#include "flow/artifact.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/guard.hpp"
#include "io/design_io.hpp"
#include "util/status.hpp"

namespace fs = std::filesystem;

namespace dco3d {

namespace {

[[noreturn]] void fail_data(const std::string& what) {
  throw StatusError(Status::data_loss("flow_artifact: " + what));
}
[[noreturn]] void fail_io(const std::string& what) {
  throw StatusError(Status::io_error("flow_artifact: " + what));
}

void set_precision(std::ostream& os) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
}

template <typename T>
void write_vec(std::ostream& os, const char* tag, const std::vector<T>& v) {
  os << "vec " << tag << ' ' << v.size();
  for (const T& x : v) os << ' ' << x;
  os << '\n';
}

template <typename T>
void read_vec(std::istream& is, const char* tag, std::vector<T>& v) {
  std::string word, name;
  std::size_t n = 0;
  if (!(is >> word >> name >> n) || word != "vec" || name != tag)
    fail_data("expected vec " + std::string(tag));
  v.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!(is >> v[i])) fail_data("truncated vec " + std::string(tag));
}

void write_metrics(std::ostream& os, const char* tag, const StageMetrics& m) {
  os << tag << ' ' << m.overflow << ' ' << m.ovf_gcell_pct << ' '
     << m.h_overflow << ' ' << m.v_overflow << ' ' << m.wns_ps << ' '
     << m.tns_ps << ' ' << m.power_mw << ' ' << m.wirelength_um << '\n';
}

void read_metrics(std::istream& is, const char* tag, StageMetrics& m) {
  std::string word;
  if (!(is >> word) || word != tag) fail_data("expected " + std::string(tag));
  if (!(is >> m.overflow >> m.ovf_gcell_pct >> m.h_overflow >> m.v_overflow >>
        m.wns_ps >> m.tns_ps >> m.power_mw >> m.wirelength_um))
    fail_data("malformed " + std::string(tag));
}

void write_timing(std::ostream& os, const TimingResult& t) {
  os << "timing " << t.wns_ps << ' ' << t.tns_ps << ' ' << t.endpoints << ' '
     << t.violating_endpoints << ' ' << t.switching_mw << ' ' << t.internal_mw
     << ' ' << t.leakage_mw << ' ' << t.total_mw << '\n';
  write_vec(os, "cell_slack", t.cell_slack);
  write_vec(os, "cell_arrival", t.cell_arrival);
  write_vec(os, "cell_out_slew", t.cell_out_slew);
  write_vec(os, "cell_in_slew", t.cell_in_slew);
  write_vec(os, "net_switch_mw", t.net_switch_mw);
}

void read_timing(std::istream& is, TimingResult& t) {
  std::string word;
  if (!(is >> word) || word != "timing") fail_data("expected timing");
  if (!(is >> t.wns_ps >> t.tns_ps >> t.endpoints >> t.violating_endpoints >>
        t.switching_mw >> t.internal_mw >> t.leakage_mw >> t.total_mw))
    fail_data("malformed timing");
  read_vec(is, "cell_slack", t.cell_slack);
  read_vec(is, "cell_arrival", t.cell_arrival);
  read_vec(is, "cell_out_slew", t.cell_out_slew);
  read_vec(is, "cell_in_slew", t.cell_in_slew);
  read_vec(is, "net_switch_mw", t.net_switch_mw);
}

void write_route_file(const fs::path& path, const RouteResult& r) {
  std::ofstream os(path);
  if (!os) fail_io("cannot open " + path.string());
  set_precision(os);
  os << "dco3d-route v2\n";
  os << "tiers " << r.num_tiers << '\n';
  os << "scalars " << r.total_overflow << ' ' << r.h_overflow << ' '
     << r.v_overflow << ' ' << r.ovf_gcell_pct << ' ' << r.wirelength << ' '
     << r.num_3d_vias << '\n';
  write_vec(os, "tier_overflow", r.tier_overflow);
  write_vec(os, "vias_per_boundary", r.vias_per_boundary);
  for (int die = 0; die < r.num_tiers; ++die) {
    const auto di = static_cast<std::size_t>(die);
    const std::string c_tag = "congestion" + std::to_string(die);
    const std::string u_tag = "usage" + std::to_string(die);
    write_vec(os, c_tag.c_str(),
              di < r.congestion.size() ? r.congestion[di]
                                       : std::vector<float>{});
    write_vec(os, u_tag.c_str(),
              di < r.usage.size() ? r.usage[di] : std::vector<float>{});
  }
  write_vec(os, "net_routed_wl", r.net_routed_wl);
  write_vec(os, "net_overflow_crossings", r.net_overflow_crossings);
  if (!os) fail_io("write failed on " + path.string());
}

RouteResult read_route_file(const fs::path& path) {
  std::ifstream is(path);
  if (!is) fail_io("cannot open " + path.string());
  std::string line, word;
  if (!std::getline(is, line) || line.rfind("dco3d-route v2", 0) != 0)
    fail_data("missing 'dco3d-route v2' header in " + path.string());
  RouteResult r;
  if (!(is >> word >> r.num_tiers) || word != "tiers" || r.num_tiers < 1)
    fail_data("expected tiers");
  if (!(is >> word) || word != "scalars") fail_data("expected scalars");
  if (!(is >> r.total_overflow >> r.h_overflow >> r.v_overflow >>
        r.ovf_gcell_pct >> r.wirelength >> r.num_3d_vias))
    fail_data("malformed scalars");
  read_vec(is, "tier_overflow", r.tier_overflow);
  read_vec(is, "vias_per_boundary", r.vias_per_boundary);
  r.congestion.resize(static_cast<std::size_t>(r.num_tiers));
  r.usage.resize(static_cast<std::size_t>(r.num_tiers));
  for (int die = 0; die < r.num_tiers; ++die) {
    const auto di = static_cast<std::size_t>(die);
    const std::string c_tag = "congestion" + std::to_string(die);
    const std::string u_tag = "usage" + std::to_string(die);
    read_vec(is, c_tag.c_str(), r.congestion[di]);
    read_vec(is, u_tag.c_str(), r.usage[di]);
  }
  read_vec(is, "net_routed_wl", r.net_routed_wl);
  read_vec(is, "net_overflow_crossings", r.net_overflow_crossings);
  return r;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void save_flow_artifact(const std::string& dir, const FlowContext& ctx) {
  const fs::path target(dir);
  const fs::path tmp(dir + ".tmp");
  std::error_code ec;
  fs::remove_all(tmp, ec);
  fs::create_directories(tmp, ec);
  if (ec) fail_io("cannot create " + tmp.string() + ": " + ec.message());

  write_design_file((tmp / "netlist.design").string(), ctx.netlist);
  write_placement_file((tmp / "placement.place").string(), ctx.placement);
  if (ctx.res.global_placement.size() > 0)
    write_placement_file((tmp / "global.place").string(),
                         ctx.res.global_placement);
  if (ctx.res.placement.size() > 0)
    write_placement_file((tmp / "final.place").string(), ctx.res.placement);
  if (ctx.route_valid) write_route_file(tmp / "route.txt", ctx.route);
  if (!ctx.res.final_route.net_routed_wl.empty() ||
      ctx.res.final_route.wirelength > 0.0)
    write_route_file(tmp / "final_route.txt", ctx.res.final_route);

  {
    std::ofstream os(tmp / "state.txt");
    if (!os) fail_io("cannot open " + (tmp / "state.txt").string());
    set_precision(os);
    os << "dco3d-flowstate v1\n";
    os << "grid " << (ctx.grid_valid ? 1 : 0);
    if (ctx.grid_valid) {
      const GCellGrid& g = ctx.res.grid;
      os << ' ' << g.outline().xlo << ' ' << g.outline().ylo << ' '
         << g.outline().xhi << ' ' << g.outline().yhi << ' ' << g.nx() << ' '
         << g.ny();
    }
    os << '\n';
    // global.place predates CTS buffer insertion, so its row count can be
    // smaller than the final netlist's — record all sizes explicitly.
    os << "sizes " << ctx.placement.size() << ' '
       << ctx.res.global_placement.size() << ' ' << ctx.res.placement.size()
       << '\n';
    write_vec(os, "skew", ctx.skew);
    write_metrics(os, "after_place", ctx.res.after_place);
    write_metrics(os, "signoff", ctx.res.signoff);
    os << "cts " << ctx.res.cts.buffers_inserted << ' ' << ctx.res.cts.levels
       << ' ' << ctx.res.cts.max_skew_ps << '\n';
    write_vec(os, "cts_skew", ctx.res.cts.skew_ps);
    os << "signoff_detail " << ctx.res.signoff_detail.upsized << ' '
       << ctx.res.signoff_detail.downsized << ' '
       << ctx.res.signoff_detail.skewed << '\n';
    write_timing(os, ctx.res.signoff_detail.timing);
    write_vec(os, "net_length_scale", ctx.res.signoff_detail.net_length_scale);
    os.flush();
    if (!os) fail_io("write failed on " + (tmp / "state.txt").string());
  }

  // Injectable crash point for the stale-tmp regression tests: fail after
  // the tmp write but before the rename, leaving the partial directory
  // behind exactly as a real crash would (ArtifactCache sweeps it on the
  // next startup).
  if (FaultInjector::instance().should_fire(FaultSite::kArtifactWrite))
    fail_io("injected artifact write failure (stale tmp left at " +
            tmp.string() + ")");

  fs::remove_all(target, ec);  // replace any previous artifact
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove_all(tmp, ec);
    fail_io("cannot rename " + tmp.string() + " to " + dir);
  }
}

bool load_flow_artifact(const std::string& dir, FlowContext& ctx) {
  const fs::path d(dir);
  if (!fs::exists(d / "state.txt")) return false;

  ctx.res = FlowResult{};

  std::ifstream is(d / "state.txt");
  if (!is) fail_io("cannot open " + (d / "state.txt").string());
  std::string line, word;
  if (!std::getline(is, line) || line.rfind("dco3d-flowstate v1", 0) != 0)
    fail_data("missing 'dco3d-flowstate v1' header in " + dir);
  int have_grid = 0;
  if (!(is >> word >> have_grid) || word != "grid") fail_data("expected grid");
  ctx.grid_valid = have_grid != 0;
  if (ctx.grid_valid) {
    Rect o;
    int nx = 0, ny = 0;
    if (!(is >> o.xlo >> o.ylo >> o.xhi >> o.yhi >> nx >> ny) || nx <= 0 ||
        ny <= 0)
      fail_data("malformed grid");
    ctx.res.grid = GCellGrid(o, nx, ny);
  }
  std::size_t n_place = 0, n_global = 0, n_final = 0;
  if (!(is >> word >> n_place >> n_global >> n_final) || word != "sizes")
    fail_data("expected sizes");
  read_vec(is, "skew", ctx.skew);
  read_metrics(is, "after_place", ctx.res.after_place);
  read_metrics(is, "signoff", ctx.res.signoff);
  if (!(is >> word) || word != "cts") fail_data("expected cts");
  if (!(is >> ctx.res.cts.buffers_inserted >> ctx.res.cts.levels >>
        ctx.res.cts.max_skew_ps))
    fail_data("malformed cts");
  read_vec(is, "cts_skew", ctx.res.cts.skew_ps);
  if (!(is >> word) || word != "signoff_detail")
    fail_data("expected signoff_detail");
  if (!(is >> ctx.res.signoff_detail.upsized >>
        ctx.res.signoff_detail.downsized >> ctx.res.signoff_detail.skewed))
    fail_data("malformed signoff_detail");
  read_timing(is, ctx.res.signoff_detail.timing);
  read_vec(is, "net_length_scale", ctx.res.signoff_detail.net_length_scale);

  ctx.netlist = read_design_file((d / "netlist.design").string());
  ctx.placement = read_placement_file((d / "placement.place").string(), n_place);
  if (fs::exists(d / "global.place"))
    ctx.res.global_placement =
        read_placement_file((d / "global.place").string(), n_global);
  if (fs::exists(d / "final.place"))
    ctx.res.placement =
        read_placement_file((d / "final.place").string(), n_final);
  ctx.route_valid = fs::exists(d / "route.txt");
  ctx.route = ctx.route_valid ? read_route_file(d / "route.txt") : RouteResult{};
  if (fs::exists(d / "final_route.txt"))
    ctx.res.final_route = read_route_file(d / "final_route.txt");
  return true;
}

}  // namespace dco3d
