#pragma once
// Stage-graph flow engine. The Pin-3D flow (Fig. 1) is expressed as named
// stages over a shared FlowContext instead of one monolithic function, which
// buys three things:
//
//   * composition — the CLI subcommands (place/route/optimize/flow) and the
//     batch runner assemble pipelines from the same stage objects instead of
//     re-implementing design loading and flow glue;
//   * observability — the Pipeline wraps every stage with a StageTrace entry
//     (wall time, arena/thread-pool counter deltas, stage metrics);
//   * resumability — with a cache directory, the Pipeline persists the full
//     flow state after each stage (content-addressed by design + config) and
//     can resume from any stage boundary with bit-identical results.
//
// Ownership rules (who mutates what) are documented in docs/flow.md. In
// short: FlowContext owns a private working copy of the netlist; the cts and
// signoff stages mutate it (buffer insertion, cell sizing); placement is
// refined in place by dco/legalize; the original design is never touched.

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/guard.hpp"
#include "flow/pin3d.hpp"
#include "flow/trace.hpp"

namespace dco3d {

class ArtifactCache;

/// Shared state threaded through a pipeline. Create with make_flow_context,
/// or fill the fields directly for standalone stage runs (the CLI loads
/// placements from files into `placement` before running a route-only
/// pipeline, for example).
struct FlowContext {
  FlowConfig cfg;
  PlacementOptimizer optimizer;  // DCO hook; empty = pass-through dco stage
  std::string design_name;       // labels trace entries and batch rows
  // Cache-key component describing the optimizer hook (a std::function can't
  // be hashed). Callers that cache must set it to something that identifies
  // the hook's behaviour, e.g. the checkpoint path; "none" = no hook.
  std::string optimizer_tag = "none";

  // Working state.
  Netlist netlist;            // private copy; cts/signoff mutate it
  Placement3D placement;      // current placement (refined stage by stage)
  std::vector<double> skew;   // per-cell clock skew (cts), normalized
  RouteResult route;          // product of the route stage, input to signoff
  bool route_valid = false;
  bool grid_valid = false;    // res.grid initialized

  // Results accumulated across stages (returned by Pipeline::run).
  FlowResult res;

  // Scratch: metrics the current stage publishes into its trace entry.
  std::vector<std::pair<std::string, double>> stage_metrics;
  void publish(const std::string& key, double value) {
    stage_metrics.emplace_back(key, value);
  }
};

/// A named flow step. Bodies must be deterministic functions of the context
/// (the determinism/bit-identity contract of the whole engine rests on it).
///
/// The optional key domain declares which slice of the configuration the
/// stage body newly reads (serialized as a string). flow_stage_keys folds the
/// domains into rolling per-stage cache keys, so two contexts that agree on
/// everything a prefix of stages reads share that prefix's artifacts even
/// when downstream knobs differ (the fidelity-aware cache of docs/search.md).
/// A stage without a declared domain is keyed on the full configuration —
/// always correct, never prefix-shareable.
class Stage {
 public:
  using KeyDomain = std::function<std::string(const FlowContext&)>;

  Stage(std::string name, std::function<void(FlowContext&)> body,
        KeyDomain key_domain = nullptr)
      : name_(std::move(name)),
        body_(std::move(body)),
        key_domain_(std::move(key_domain)) {}

  const std::string& name() const { return name_; }
  void run(FlowContext& ctx) const { body_(ctx); }
  const KeyDomain& key_domain() const { return key_domain_; }

 private:
  std::string name_;
  std::function<void(FlowContext&)> body_;
  KeyDomain key_domain_;
};

/// What actually happened during a Pipeline::run — which stages were served
/// from the cache, where the run stopped, and why (the serve scheduler's job
/// records are built from this).
struct PipelineRunInfo {
  int last_stage = -1;    // index of the last stage satisfied (run or cached)
  int first_stage = 0;    // first stage actually executed (cached before it)
  int stages_run = 0;     // stage bodies executed
  int stages_cached = 0;  // stages satisfied from the artifact cache
  bool deadline_hit = false;  // stopped early by opts.deadline (early commit)
  bool cancelled = false;     // stopped early by opts.cancel (early commit)
};

struct PipelineOptions {
  // Start at this stage, restoring the preceding stage's cached artifact
  // (requires cache_dir; kNotFound if the artifact is missing). Empty = run
  // from the first stage.
  std::string resume_from;
  // Start at this stage trusting the caller-prepared FlowContext (no cache
  // load). Used by CLI wrappers that load placements from files. Mutually
  // exclusive with resume_from.
  std::string start_at;
  // Stop after this stage (inclusive). Empty = run to the end.
  std::string stop_after;
  // Artifact cache root; empty disables persistence. Layout:
  //   <cache_dir>/<content-key>/<stage-name>/{state.txt,netlist.design,...}
  std::string cache_dir;
  // Collect per-stage trace entries (appended; caller owns the vector).
  std::vector<StageTraceEntry>* trace = nullptr;
  // With a cache directory: probe for the deepest cached artifact of this
  // context's content key (at or before the stop stage) and resume right
  // after it. Corrupt artifacts are discarded and probing continues
  // shallower. This is the idempotent-resubmission path of the serve
  // scheduler: a repeated prefix skips straight to the divergent stage.
  bool auto_resume = false;
  // LRU byte-budget bookkeeping for the cache directory (shared by serve /
  // flow / batch). When set and cache_dir is empty, cache->dir() is used.
  ArtifactCache* cache = nullptr;
  // Per-run wall-clock deadline, checked before each stage: on expiry the
  // pipeline early-commits — it returns normally with the results of the
  // stages completed so far instead of throwing (info reports deadline_hit).
  const Deadline* deadline = nullptr;
  // Cooperative cancellation, checked with the deadline: set to true by
  // another thread to make the run early-commit at the next stage boundary.
  const std::atomic<bool>* cancel = nullptr;
  // Invoked after every executed stage with its trace entry — the serve
  // scheduler streams these to waiting clients as progress events.
  std::function<void(const StageTraceEntry&)> on_trace;
  // Filled with what actually happened (optional).
  PipelineRunInfo* info = nullptr;
};

/// An ordered stage list with resume/stop/cache/trace execution semantics.
class Pipeline {
 public:
  explicit Pipeline(std::vector<Stage> stages) : stages_(std::move(stages)) {}

  const std::vector<Stage>& stages() const { return stages_; }
  /// Index of a stage by name; -1 when absent.
  int index_of(const std::string& name) const;
  /// Comma-separated stage names (for error messages and docs).
  std::string stage_names() const;

  /// Run stages [start..stop] on the context, returning the accumulated
  /// FlowResult. Throws StatusError kInvalidArgument for unknown stage names
  /// and kNotFound for a missing resume artifact.
  FlowResult run(FlowContext& ctx, const PipelineOptions& opts = {}) const;

 private:
  std::vector<Stage> stages_;
};

/// The standard Pin-3D pipeline: place3d, dco, after-place-metrics, cts,
/// legalize, route, signoff, final-metrics. run_pin3d_flow composes this.
const Pipeline& pin3d_pipeline();

/// One stage of the standard pipeline by name (kInvalidArgument if unknown).
/// CLI wrappers compose custom pipelines from these, e.g. {place3d, legalize}
/// for the `place` subcommand.
const Stage& pin3d_stage(const std::string& name);

/// Initialize a context: copies the design into the working netlist and
/// stores config + hook. Placement/grid/skew start empty.
FlowContext make_flow_context(const Netlist& design, const FlowConfig& cfg,
                              PlacementOptimizer optimizer = nullptr);

/// Content-addressed cache key: 64-bit FNV-1a over the serialized design,
/// every FlowConfig field, and the optimizer tag; formatted as 16 hex chars.
/// This is the whole-flow identity (serve job keys, status reporting); the
/// artifact store itself is addressed by the per-stage keys below.
std::string flow_cache_key(const FlowContext& ctx);

/// Per-stage rolling prefix keys, one per pipeline stage, each 16 hex chars.
/// keys[i] hashes the serialized design, seed and tier count plus the key
/// domains of stages 0..i — i.e. exactly the configuration surface the flow
/// has consumed up to and including stage i. Two contexts share keys[i]
/// (and therefore stage i's cached artifact) iff they agree on everything
/// stages 0..i read, regardless of downstream knobs. Must be computed from
/// the pristine pre-run context (stage bodies mutate the working netlist).
std::vector<std::string> flow_stage_keys(const FlowContext& ctx,
                                         const Pipeline& pipeline);

/// Shared router-calibration glue (used by the CLI subcommands and batch
/// jobs): grid over the reference placement's outline, capacities at the
/// usage percentile. One calibration must be reused across flow variants of
/// the same design so comparisons share a capacity model.
RouterConfig calibrated_router(const Netlist& design, const Placement3D& ref,
                               int grid_n, double pctile);

}  // namespace dco3d
