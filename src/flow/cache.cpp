#include "flow/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <vector>

namespace fs = std::filesystem;

namespace dco3d {

namespace {

std::uint64_t dir_bytes(const fs::path& p) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(p, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) total += it->file_size(ec);
  }
  return total;
}

}  // namespace

ArtifactCache::ArtifactCache(std::string dir, std::uint64_t budget_bytes)
    : dir_(std::move(dir)), budget_(budget_bytes) {
  counters_.budget_bytes = budget_;
  std::error_code ec;
  fs::create_directories(dir_, ec);

  // Startup sweep: a crash between the tmp write and the rename leaves a
  // partial "<name>.tmp" directory (or file) behind — never a valid
  // artifact, always safe to delete.
  std::vector<fs::path> stale;
  for (fs::recursive_directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().filename().string().ends_with(".tmp")) {
      stale.push_back(it->path());
      it.disable_recursion_pending();
    }
  }
  for (const fs::path& p : stale) {
    fs::remove_all(p, ec);
    if (!ec) ++counters_.tmp_swept;
  }

  // Index surviving stage artifacts, oldest mtime first, so eviction order
  // is sensible straight after a restart.
  struct Found {
    fs::file_time_type mtime;
    std::string rel;
    std::uint64_t bytes;
  };
  std::vector<Found> found;
  for (fs::directory_iterator key_it(dir_, ec), end; !ec && key_it != end;
       key_it.increment(ec)) {
    if (!key_it->is_directory(ec)) continue;
    std::error_code ec2;
    for (fs::directory_iterator st(key_it->path(), ec2), end2;
         !ec2 && st != end2; st.increment(ec2)) {
      if (!st->is_directory(ec2)) continue;
      Found f;
      f.mtime = fs::last_write_time(st->path(), ec2);
      f.rel = key_it->path().filename().string() + "/" +
              st->path().filename().string();
      f.bytes = dir_bytes(st->path());
      found.push_back(std::move(f));
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (const Found& f : found) index_locked(f.rel, f.bytes);
  evict_to_fit_locked("");
}

void ArtifactCache::index_locked(const std::string& rel, std::uint64_t bytes) {
  const auto it = index_.find(rel);
  if (it != index_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.pos);
    index_.erase(it);
  }
  lru_.push_back(rel);
  index_[rel] = Entry{std::prev(lru_.end()), bytes};
  bytes_ += bytes;
}

void ArtifactCache::evict_to_fit_locked(const std::string& keep) {
  if (budget_ == 0) return;
  while (bytes_ > budget_ && !lru_.empty()) {
    const std::string victim = lru_.front();
    if (victim == keep) break;  // never evict the artifact being saved
    const auto it = index_.find(victim);
    bytes_ -= it->second.bytes;
    counters_.evictions++;
    counters_.evicted_bytes += it->second.bytes;
    lru_.pop_front();
    index_.erase(it);
    std::error_code ec;
    const fs::path path = fs::path(dir_) / victim;
    fs::remove_all(path, ec);
    // Drop the content-key directory once its last stage artifact is gone.
    fs::path parent = path.parent_path();
    if (fs::is_empty(parent, ec) && !ec) fs::remove(parent, ec);
  }
}

void ArtifactCache::on_saved(const std::string& rel) {
  std::uint64_t bytes = dir_bytes(fs::path(dir_) / rel);
  std::lock_guard<std::mutex> lk(mu_);
  counters_.saves++;
  index_locked(rel, bytes);
  evict_to_fit_locked(rel);
}

void ArtifactCache::on_loaded(const std::string& rel) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.loads++;
  const auto it = index_.find(rel);
  if (it == index_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second.pos);  // move to MRU
}

void ArtifactCache::on_miss() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.misses++;
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ArtifactCacheStats s = counters_;
  s.entries = index_.size();
  s.bytes = bytes_;
  s.budget_bytes = budget_;
  return s;
}

}  // namespace dco3d
