#include "flow/pin3d.hpp"

#include "flow/stage.hpp"

namespace dco3d {

StageMetrics measure_stage(const Netlist& netlist, const Placement3D& placement,
                           const GCellGrid& grid, const TimingConfig& timing_cfg,
                           const RouterConfig& router_cfg,
                           const std::vector<double>* skew,
                           RouteResult* route_out) {
  RouteResult route = global_route(netlist, placement, grid, router_cfg);
  const std::vector<double> detour =
      detour_factors(netlist, placement, route, /*overflow_penalty=*/0.03);
  const TimingResult t = run_sta(netlist, placement, timing_cfg, skew, &detour);

  StageMetrics m;
  m.overflow = route.total_overflow;
  m.ovf_gcell_pct = route.ovf_gcell_pct;
  m.h_overflow = route.h_overflow;
  m.v_overflow = route.v_overflow;
  m.wns_ps = t.wns_ps;
  m.tns_ps = t.tns_ps;
  m.power_mw = t.total_mw;
  m.wirelength_um = route.wirelength;
  if (route_out) *route_out = std::move(route);
  return m;
}

FlowResult run_pin3d_flow(const Netlist& design, const FlowConfig& cfg,
                          const PlacementOptimizer& optimizer) {
  // The flow is a straight composition of the standard stage graph; see
  // flow/stage.hpp for the stage list and docs/flow.md for the semantics.
  FlowContext ctx = make_flow_context(design, cfg, optimizer);
  return pin3d_pipeline().run(ctx);
}

}  // namespace dco3d
