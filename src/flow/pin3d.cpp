#include "flow/pin3d.hpp"

#include "place/legalize.hpp"
#include "util/logging.hpp"

namespace dco3d {

StageMetrics measure_stage(const Netlist& netlist, const Placement3D& placement,
                           const GCellGrid& grid, const TimingConfig& timing_cfg,
                           const RouterConfig& router_cfg,
                           const std::vector<double>* skew,
                           RouteResult* route_out) {
  RouteResult route = global_route(netlist, placement, grid, router_cfg);
  const std::vector<double> detour =
      detour_factors(netlist, placement, route, /*overflow_penalty=*/0.03);
  const TimingResult t = run_sta(netlist, placement, timing_cfg, skew, &detour);

  StageMetrics m;
  m.overflow = route.total_overflow;
  m.ovf_gcell_pct = route.ovf_gcell_pct;
  m.h_overflow = route.h_overflow;
  m.v_overflow = route.v_overflow;
  m.wns_ps = t.wns_ps;
  m.tns_ps = t.tns_ps;
  m.power_mw = t.total_mw;
  m.wirelength_um = route.wirelength;
  if (route_out) *route_out = std::move(route);
  return m;
}

FlowResult run_pin3d_flow(const Netlist& design, const FlowConfig& cfg,
                          const PlacementOptimizer& optimizer) {
  // Work on a private copy: CTS adds cells/nets, signoff resizes cells.
  Netlist netlist = design;

  // --- Stage 1: 3D global placement (pseudo-3D, Table-I knobs). ---
  Placement3D placement =
      place_pseudo3d(netlist, cfg.place_params, cfg.seed, /*legalized=*/false);

  // --- DCO hook: differentiable congestion optimization (if provided). ---
  if (optimizer) optimizer(netlist, placement);

  FlowResult res;
  res.grid = GCellGrid(placement.outline, cfg.grid_nx, cfg.grid_ny);
  res.global_placement = placement;

  // "after 3D placement optimization" metrics: legalize a copy and evaluate
  // (the flow itself continues from the global placement through CTS).
  {
    Placement3D legal = placement;
    legalize_all(netlist, legal, cfg.place_params);
    res.after_place = measure_stage(netlist, legal, res.grid, cfg.timing,
                                    cfg.router);
  }

  // --- Stage 2: CTS (inserts buffers + clock nets). ---
  res.cts = run_cts(netlist, placement, cfg.cts);
  std::vector<double> skew = res.cts.skew_ps;
  // Normalize skew to zero-mean so the ideal-clock period is preserved and
  // only relative insertion-delay differences remain.
  if (!skew.empty()) {
    double mean = 0.0;
    std::size_t n = 0;
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
      if (netlist.is_sequential(static_cast<CellId>(ci))) {
        mean += skew[ci];
        ++n;
      }
    }
    if (n > 0) {
      mean /= static_cast<double>(n);
      for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
        if (netlist.is_sequential(static_cast<CellId>(ci)) ||
            netlist.is_macro(static_cast<CellId>(ci)))
          skew[ci] -= mean;
    }
  }

  // --- Stage 3: legalization (post-CTS placement). ---
  legalize_all(netlist, placement, cfg.place_params);

  // --- Stage 4: global route. ---
  RouteResult route = global_route(netlist, placement, res.grid, cfg.router);

  // --- Stage 5: signoff optimization (sizing, useful skew, detours). ---
  SignoffConfig so = cfg.signoff;
  so.enable_useful_skew = so.enable_useful_skew || cfg.place_params.enable_ccd;
  so.enable_low_power_recovery =
      so.enable_low_power_recovery || cfg.place_params.low_power_placement;
  res.signoff_detail = run_signoff(netlist, placement, route, cfg.timing, skew, so);

  // Final metrics: re-route (sizing changed loads/areas negligibly for the
  // router, but detours and overflow stand) and re-time.
  res.signoff = measure_stage(netlist, placement, res.grid, cfg.timing,
                              cfg.router, &skew, &res.final_route);
  res.placement = std::move(placement);
  return res;
}

}  // namespace dco3d
