#pragma once
// DCO-as-a-service: a resident optimization server. Clients submit flow jobs
// over a loopback TCP socket speaking a line-delimited JSON protocol
// (docs/serve.md); the server schedules them across a fixed set of worker
// lanes through a bounded priority job queue with explicit admission control
// (excess load is shed with a Retry-After-style backoff hint, never queued
// unboundedly), runs each job through the stage-graph pipeline with a
// per-job wall-clock deadline that early-commits partial results instead of
// dying, shares one byte-budgeted content-addressed artifact cache across
// all jobs (idempotent resubmissions skip straight to the divergent stage),
// and streams StageTrace events back to waiting clients as progress.
//
// Robustness contract:
//   * a failed/diverged job is isolated — its Status lands in the job
//     record, the queue and the server keep running;
//   * drain (the `drain` command, or SIGINT/SIGTERM via request_drain)
//     stops admission, rejects still-queued jobs with a retriable
//     kUnavailable status, lets in-flight jobs finish or early-commit,
//     then shuts every connection and thread down cleanly;
//   * every worker lane is an util::InlineLane, so concurrent jobs never
//     re-enter the shared kernel pool and each job's numbers stay
//     bit-identical to a serial run.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/cache.hpp"
#include "flow/jobqueue.hpp"
#include "flow/stage.hpp"
#include "netlist/generators.hpp"
#include "util/jsonl.hpp"
#include "util/socket.hpp"
#include "util/status.hpp"

namespace dco3d {

inline constexpr const char* kServeProtocol = "dco3d-serve-v1";
inline constexpr int kDefaultServePort = 40223;

/// Job lifecycle. Terminal states from kDone on; kShed/kRejected carry a
/// retriable kUnavailable status (the client should back off and resubmit).
enum class JobState {
  kQueued,
  kRunning,
  kDone,         // all requested stages completed
  kEarlyCommit,  // deadline hit — partial results committed
  kFailed,       // the flow threw; Status says why; server unaffected
  kShed,         // not admitted (queue full) — retriable
  kCancelled,    // cancelled by the client
  kRejected,     // was queued when the server drained — retriable
};
const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);
bool job_state_retriable(JobState s);

/// What a client submits (all fields have protocol defaults; docs/serve.md).
struct ServeJobSpec {
  std::string type = "flow";  // "flow" (built in) or a registered job type
  std::string kind = "dma";   // generator design kind
  double scale = 0.02;
  int grid = 16;
  int tiers = 2;             // stacked dies; 2 = classic two-die flow
  double clock_ps = 250.0;
  std::uint64_t seed = 1;
  std::string stop_after;    // empty = full pipeline
  double deadline_ms = 0.0;  // 0 = server default
  int priority = 0;          // higher runs first
  bool use_cache = true;     // share the artifact cache
};

/// What a custom job runner (a non-"flow" job type) reports back; surfaced
/// through JobSnapshot and the status/done protocol events. The search job
/// type fills the objective/eval fields.
struct ServeRunOutcome {
  bool has_objective = false;
  double objective = 0.0;   // best objective found
  int rounds = 0;           // search rounds completed
  int cheap_evals = 0;
  int full_evals = 0;
  bool deadline_hit = false;  // runner early-committed on the job deadline
  bool cancelled = false;     // runner observed the cancel flag
};

/// Execution context handed to a custom job runner: the parsed spec, the raw
/// submit request (for type-specific knobs), the shared artifact cache, the
/// per-job guards, and an event sink streaming progress lines to waiting
/// clients (`kind` becomes the protocol "event" field, `inner_json` is
/// spliced as the "trace" payload — the StageTrace streaming convention).
struct ServeRunContext {
  const ServeJobSpec& spec;
  const util::JsonObject& request;
  ArtifactCache* cache = nullptr;
  const Deadline* deadline = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  std::function<void(const std::string& kind, const std::string& inner_json)>
      emit;
};

/// A custom job type's implementation. Runs synchronously on a worker lane
/// (InlineLane — same bit-identity contract as flow jobs). A non-OK return
/// marks the job failed; cancellation/deadline are reported via the outcome.
using ServeJobRunner =
    std::function<Status(const ServeRunContext&, ServeRunOutcome&)>;

/// Parse a generator design kind ("dma", "aes", ...); on failure fills `err`
/// with kInvalidArgument (listing the valid kinds) and returns kDma.
DesignKind parse_serve_kind(const std::string& k, Status& err);

/// Immutable view of a job record (returned by Server::job / the status
/// command).
struct JobSnapshot {
  std::string id;
  JobState state = JobState::kQueued;
  Status status;     // why the job failed / was shed / was rejected
  std::string key;   // flow content key (once the job started)
  double wall_ms = 0.0;
  int last_stage = -1;
  int stages_run = 0;
  int stages_cached = 0;
  bool deadline_hit = false;
  double retry_after_ms = 0.0;  // backoff hint for retriable states
  // Headline metrics of the deepest measured stage (when available).
  double overflow = -1.0, wns_ps = 0.0, wirelength_um = 0.0;
  // Custom-runner outcome (search jobs: best objective + eval counts).
  std::string type = "flow";
  ServeRunOutcome outcome;
};

struct ServerConfig {
  int port = 0;               // 0 = ephemeral; Server::port() has the truth
  int workers = 2;            // concurrent job lanes
  std::size_t queue_depth = 8;
  double default_deadline_ms = 0.0;  // 0 = unlimited
  std::string cache_dir;             // empty = no artifact cache
  std::uint64_t cache_budget_bytes = 1ull << 30;  // generous default (1 GiB)
  int idle_timeout_ms = 30000;  // recv timeout on idle client connections
  std::size_t history = 256;    // finished job records kept for status
  // Custom job types beyond the built-in "flow" — e.g. the CLI installs
  // {"search", make_search_job_runner()} (src/search/serve_search.hpp).
  // Submissions with an unregistered type are rejected as invalid_argument.
  std::map<std::string, ServeJobRunner> runners;
};

struct ServerCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t early_commits = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  // implies drain + full stop

  /// Bind, listen, spawn workers + listener. Throws StatusError
  /// (kUnavailable: port taken; kIoError otherwise).
  void start();
  int port() const { return port_; }
  bool stopped() const { return stopped_.load(); }

  /// Graceful stop: reject queued jobs (retriable), let running jobs finish
  /// or early-commit, then stop. Safe from any thread (the SIGINT/SIGTERM
  /// watcher calls this); idempotent. Returns once drain completed.
  void request_drain();

  /// Block until the server fully stopped (drain command, request_drain, or
  /// destructor) and all threads are joined.
  void wait();

  /// Direct (in-process) views for tests and the load harness.
  JobSnapshot job(const std::string& id) const;
  ServerCounters counters() const;
  JobQueueStats queue_stats() const;
  const ArtifactCache* cache() const { return cache_.get(); }

 private:
  struct Job;

  void accept_loop();
  void worker_loop();
  void conn_loop(int raw_fd);
  void run_job(Job& job);
  void finish_job(Job& job, JobState state, Status status);
  void update_counters(Job& job, JobState state);
  std::string do_drain();  // returns the summary response JSON
  void teardown();         // join/stop everything; idempotent

  std::shared_ptr<Job> find_job(const std::string& id) const;
  std::shared_ptr<Job> find_job_num(std::uint64_t num) const;
  JobSnapshot snapshot(const Job& job) const;

  // Protocol handlers (each returns the response line; submit may stream).
  std::string handle_submit(const util::JsonObject& req, int fd);
  std::string handle_status(const util::JsonObject& req) const;
  std::string handle_cancel(const util::JsonObject& req);
  void stream_job(int fd, Job& job);

  ServerConfig cfg_;
  util::Fd listen_fd_;
  util::Fd wake_rd_, wake_wr_;  // self-pipe: wakes the accept loop on stop
  int port_ = 0;
  std::unique_ptr<ArtifactCache> cache_;
  JobQueue queue_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> torn_down_{false};

  mutable std::mutex jobs_mu_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> finished_order_;  // history eviction order
  std::uint64_t next_job_ = 1;
  ServerCounters counters_;

  std::thread listener_;
  std::vector<std::thread> workers_;

  mutable std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  int conn_count_ = 0;
  std::condition_variable conns_cv_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::mutex drain_mu_;  // serializes do_drain callers

  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace dco3d
