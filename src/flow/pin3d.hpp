#pragma once
// The Pin-3D flow driver (Fig. 1): 3D placement -> [optional placement
// optimizer hook, where DCO-3D plugs in] -> CTS -> post-CTS optimization ->
// global routing -> signoff timing closure. Produces the two evaluation
// stages of Table III ("after 3D placement optimization" and "after signoff
// optimization").

#include <functional>

#include "flow/cts.hpp"
#include "flow/metrics.hpp"
#include "flow/signoff.hpp"
#include "netlist/generators.hpp"
#include "place/placer3d.hpp"
#include "route/router.hpp"
#include "timing/sta.hpp"

namespace dco3d {

/// Hook invoked between 3D global placement and CTS; DCO-3D's differentiable
/// cell spreading runs here (Fig. 1, red boxes). Receives the netlist and
/// the un-legalized global placement to refine in place.
using PlacementOptimizer = std::function<void(const Netlist&, Placement3D&)>;

struct FlowConfig {
  PlacementParams place_params;
  TimingConfig timing;
  RouterConfig router;
  CtsConfig cts;
  SignoffConfig signoff;
  int grid_nx = 64;
  int grid_ny = 64;
  // Number of stacked dies (tiers). 2 is the classic face-to-face stack and
  // reproduces the legacy two-die flow bit-for-bit; must be >= 2.
  int num_tiers = 2;
  std::uint64_t seed = 1;
};

struct FlowResult {
  Placement3D placement;        // final (post-CTS, legalized) placement
  Placement3D global_placement; // placement fed to CTS (post optimizer hook)
  StageMetrics after_place;     // Table III left block
  StageMetrics signoff;         // Table III right block
  RouteResult final_route;
  CtsResult cts;
  SignoffResult signoff_detail;
  GCellGrid grid;
};

/// Run the full flow on a working copy of the design. The netlist is copied
/// internally because CTS and signoff sizing mutate it.
FlowResult run_pin3d_flow(const Netlist& design, const FlowConfig& cfg,
                          const PlacementOptimizer& optimizer = nullptr);

/// Flow-level metric collection: route + STA on the current state.
StageMetrics measure_stage(const Netlist& netlist, const Placement3D& placement,
                           const GCellGrid& grid, const TimingConfig& timing_cfg,
                           const RouterConfig& router_cfg,
                           const std::vector<double>* skew = nullptr,
                           RouteResult* route_out = nullptr);

}  // namespace dco3d
