#pragma once
// Clock-tree synthesis — substitute for ICC2's 3D CTS step in the Pin-3D
// flow (Fig. 1). Builds a recursive-bisection buffered clock tree over all
// sequential cells (both dies, F2F-bonded so the tree can hop tiers),
// inserting real buffer cells and clock nets into the netlist so that the
// clock network contributes to routing congestion, wirelength, and power
// exactly like signal logic. Returns the per-register insertion-delay skew
// consumed by STA.

#include <vector>

#include "netlist/netlist.hpp"
#include "timing/sta.hpp"

namespace dco3d {

struct CtsConfig {
  std::size_t max_sinks_per_leaf = 12;
  double buffer_delay_ps = 9.0;     // per tree level
  double wire_delay_per_um = 0.04;  // ps/um along tree branches
  int buffer_drive = 4;             // BUF_X4 for tree nodes
};

struct CtsResult {
  // Per-cell clock arrival offset (ps); non-sequential cells hold 0.
  std::vector<double> skew_ps;
  std::size_t buffers_inserted = 0;
  std::size_t levels = 0;
  double max_skew_ps = 0.0;
};

/// Run CTS: mutates netlist (buffer cells + clock nets) and placement
/// (buffer locations). The returned skew vector is sized to the *new* cell
/// count.
CtsResult run_cts(Netlist& netlist, Placement3D& placement,
                  const CtsConfig& cfg = {});

}  // namespace dco3d
