#pragma once
// Batch multi-design flow runner: push N designs through the stage-graph
// pipeline concurrently on the shared util/parallel thread pool. Each job
// runs on one pool lane; the flow's own parallel kernels nest inside that
// lane and therefore serialize per design, so a batch saturates the machine
// with design-level parallelism while every per-design result stays
// bit-identical to a sequential single-design run (the pool's determinism
// contract). Job failures are isolated: a throwing flow records its Status
// in the entry and the other designs complete normally.

#include <string>
#include <vector>

#include "flow/cache.hpp"
#include "flow/stage.hpp"
#include "netlist/generators.hpp"
#include "util/status.hpp"

namespace dco3d {

struct BatchJob {
  std::string name;             // row label; also tags trace entries
  Netlist design;
  FlowConfig cfg;
  PlacementOptimizer optimizer; // optional DCO hook
  std::string optimizer_tag = "none";
};

struct BatchEntry {
  std::string name;
  Status status;                 // OK, or why the job failed
  FlowResult result;             // valid when status.ok()
  double wall_ms = 0.0;
  std::size_t cells = 0, nets = 0;
  std::vector<StageTraceEntry> trace;  // per-stage trace of this job
  PipelineRunInfo info;          // what the pipeline actually did
};

struct BatchOptions {
  std::string stop_after;  // run the pipeline only up to this stage
  bool collect_trace = false;
  // Shared byte-budgeted artifact cache (LRU eviction; see flow/cache.hpp).
  // Jobs persist stage artifacts into it and auto-resume from cached
  // prefixes, so re-running a batch with an overlapping job set skips
  // straight to the divergent stages.
  ArtifactCache* cache = nullptr;
};

/// Run every job through the standard Pin-3D pipeline, jobs in parallel
/// (pool lanes), stages within a job sequential. Entries come back in job
/// order regardless of completion order.
std::vector<BatchEntry> run_many(const std::vector<BatchJob>& jobs,
                                 const BatchOptions& opts = {});

/// Fully-general concurrent pipeline job: the caller supplies the context
/// factory and the complete PipelineOptions. run_many is a thin wrapper over
/// this; the multi-fidelity searcher (src/search) is the other customer —
/// its candidate evaluations run through here, one pool lane per candidate.
struct PipelineJob {
  std::string name;                          // labels the entry and traces
  std::function<FlowContext()> make_context;  // fresh context per run
  PipelineOptions opts;  // trace/info pointers are overridden per entry
  bool collect_trace = false;
};

/// Run caller-assembled pipeline jobs concurrently on the shared pool, one
/// lane per job, with the same isolation and ordering guarantees as
/// run_many. Each entry's trace/info fields are populated regardless of the
/// pointers in job.opts (which are redirected to the entry).
std::vector<BatchEntry> run_pipeline_jobs(const std::vector<PipelineJob>& jobs);

/// Deterministic per-design seed for job `index` under a batch base seed:
/// splitmix64 of (base, index), so adding/removing designs never shifts the
/// seeds of the others.
std::uint64_t batch_seed(std::uint64_t base_seed, std::size_t index);

/// Build one job per design kind: generate the netlist at `scale`, derive
/// the seed with batch_seed, and auto-calibrate the router config from a
/// reference placement (the same glue the `flow` subcommand uses).
std::vector<BatchJob> make_generator_jobs(const std::vector<DesignKind>& kinds,
                                          double scale, const FlowConfig& base,
                                          std::uint64_t base_seed,
                                          double calibration_pctile = 0.70);

/// Merged summary: one row per entry with the Table-III style columns of
/// both measured stages, plus wall time and failure statuses.
std::string batch_summary_table(const std::vector<BatchEntry>& entries);

}  // namespace dco3d
