#pragma once
// Byte-budgeted LRU eviction for the content-addressed artifact cache. The
// cache directory layout is <dir>/<content-key>/<stage-name>/ (one directory
// per stage boundary, written atomically by save_flow_artifact); without a
// budget it grows forever, which a resident server cannot afford. An
// ArtifactCache indexes those stage directories, tracks recency, and evicts
// the least-recently-used ones once the total byte footprint exceeds the
// budget. It also sweeps stale *.tmp leftovers on startup: a crash between
// the tmp write and the rename leaks a partial directory that would
// otherwise sit in the cache dir forever.
//
// Thread-safe: serve workers and batch lanes share one instance. Shared by
// `serve`, `flow`, and `batch` through PipelineOptions::cache.

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace dco3d {

struct ArtifactCacheStats {
  std::size_t entries = 0;         // stage artifacts currently indexed
  std::uint64_t bytes = 0;         // their total footprint
  std::uint64_t budget_bytes = 0;  // 0 = unbounded
  std::uint64_t evictions = 0;     // stage artifacts removed for space
  std::uint64_t evicted_bytes = 0;
  std::uint64_t tmp_swept = 0;     // stale *.tmp paths removed at startup
  std::uint64_t loads = 0;         // artifacts re-used (cache hits)
  std::uint64_t misses = 0;        // probes that found no usable artifact
  std::uint64_t saves = 0;         // artifacts written
};

class ArtifactCache {
 public:
  /// Opens (creates) `dir`, sweeps stale *.tmp leftovers, and indexes the
  /// existing stage artifacts oldest-mtime-first so a restarted server
  /// inherits a sensible recency order. budget_bytes 0 disables eviction.
  ArtifactCache(std::string dir, std::uint64_t budget_bytes);

  const std::string& dir() const { return dir_; }

  /// Bookkeep a freshly saved artifact `<key>/<stage>`: (re)measure it, move
  /// it to most-recently-used, then evict LRU entries — never the one just
  /// saved — until the footprint fits the budget.
  void on_saved(const std::string& rel);

  /// Mark `<key>/<stage>` recently used (a resume/auto-resume hit).
  void on_loaded(const std::string& rel);

  /// Record a probe that found no usable artifact (a cache miss). Together
  /// with `loads` this makes cache effectiveness visible in StageTrace
  /// footers and search traces, not just the serve status endpoint.
  void on_miss();

  ArtifactCacheStats stats() const;

 private:
  void evict_to_fit_locked(const std::string& keep);
  void index_locked(const std::string& rel, std::uint64_t bytes);

  std::string dir_;
  std::uint64_t budget_;
  mutable std::mutex mu_;
  // LRU order: front = least recently used. index_ maps rel path -> (list
  // position, measured bytes).
  std::list<std::string> lru_;
  struct Entry {
    std::list<std::string>::iterator pos;
    std::uint64_t bytes = 0;
  };
  std::map<std::string, Entry> index_;
  std::uint64_t bytes_ = 0;
  ArtifactCacheStats counters_;
};

}  // namespace dco3d
