#include "flow/cts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

namespace dco3d {

namespace {

struct SinkRef {
  CellId cell;
  Point pos;
  int tier;
};

Point centroid(const std::vector<SinkRef>& sinks) {
  Point c{0.0, 0.0};
  for (const SinkRef& s : sinks) c = c + s.pos;
  const double n = std::max<double>(static_cast<double>(sinks.size()), 1.0);
  return {c.x / n, c.y / n};
}

int majority_tier(const std::vector<SinkRef>& sinks, int num_tiers) {
  // Most-populated tier, ties to the lowest index. At two tiers this is the
  // classic "strict majority goes to tier 1" rule.
  std::vector<int> counts(static_cast<std::size_t>(num_tiers), 0);
  for (const SinkRef& s : sinks)
    if (s.tier >= 0 && s.tier < num_tiers)
      ++counts[static_cast<std::size_t>(s.tier)];
  int best = 0;
  for (int t = 1; t < num_tiers; ++t)
    if (counts[static_cast<std::size_t>(t)] > counts[static_cast<std::size_t>(best)])
      best = t;
  return best;
}

}  // namespace

CtsResult run_cts(Netlist& netlist, Placement3D& placement, const CtsConfig& cfg) {
  CtsResult res;

  // Collect clock sinks: sequential cells (registers); macros are clocked
  // too in our model.
  std::vector<SinkRef> sinks;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (netlist.is_sequential(id) || netlist.is_macro(id))
      sinks.push_back({id, placement.xy[ci], placement.tier[ci]});
  }
  res.skew_ps.assign(netlist.num_cells(), 0.0);
  if (sinks.empty()) return res;

  const CellTypeId buf_type =
      netlist.library().find(CellFunction::kBuf, cfg.buffer_drive);
  assert(buf_type >= 0);
  const CellType& buf = netlist.library().type(buf_type);

  // Recursive geometric bisection, alternating cut axis. Each node becomes a
  // buffer at its sink centroid; leaves drive the registers directly.
  std::size_t buffer_counter = 0;
  std::function<CellId(std::vector<SinkRef>, bool, std::size_t, double)> build =
      [&](std::vector<SinkRef> group, bool cut_x, std::size_t level,
          double arrival) -> CellId {
    res.levels = std::max(res.levels, level + 1);
    const Point c = centroid(group);
    const int tier = majority_tier(group, placement.num_tiers);
    const CellId bid = netlist.add_cell("cts_buf_" + std::to_string(buffer_counter++),
                                        buf_type);
    ++res.buffers_inserted;
    placement.xy.push_back(c);
    placement.tier.push_back(tier);
    res.skew_ps.push_back(0.0);

    const double my_arrival = arrival + cfg.buffer_delay_ps;

    Net net;
    net.name = "clk_" + std::to_string(bid);
    net.is_clock = true;
    net.driver = {bid, {buf.width, buf.height * 0.5}};

    if (group.size() <= cfg.max_sinks_per_leaf) {
      for (const SinkRef& s : group) {
        net.sinks.push_back({s.cell, Point{0.0, 0.0}});
        const double sk =
            my_arrival + cfg.wire_delay_per_um * manhattan(c, s.pos);
        res.skew_ps[static_cast<std::size_t>(s.cell)] = sk;
        res.max_skew_ps = std::max(res.max_skew_ps, sk);
      }
    } else {
      std::sort(group.begin(), group.end(), [cut_x](const SinkRef& a, const SinkRef& b) {
        return cut_x ? a.pos.x < b.pos.x : a.pos.y < b.pos.y;
      });
      const std::size_t mid = group.size() / 2;
      std::vector<SinkRef> left(group.begin(), group.begin() + mid);
      std::vector<SinkRef> right(group.begin() + mid, group.end());
      auto recurse = [&](std::vector<SinkRef> half) {
        const Point hc = centroid(half);
        const double child_arrival =
            my_arrival + cfg.wire_delay_per_um * manhattan(c, hc);
        const CellId child =
            build(std::move(half), !cut_x, level + 1, child_arrival);
        net.sinks.push_back({child, Point{0.0, buf.height * 0.5}});
      };
      recurse(std::move(left));
      recurse(std::move(right));
    }
    netlist.add_net(std::move(net));
    return bid;
  };

  build(std::move(sinks), /*cut_x=*/true, 0, 0.0);
  // Rebuild the cell-side CSR views over the buffers and clock nets just
  // added (add_cell/add_net cleared the frozen state).
  netlist.freeze();
  return res;
}

}  // namespace dco3d
