#include "flow/dataset.hpp"

#include "flow/cts.hpp"
#include "place/legalize.hpp"
#include "route/router.hpp"

#include <algorithm>

namespace dco3d {

DataSample make_sample(const Netlist& design, const PlacementParams& params,
                       const DatasetConfig& cfg, std::uint64_t seed,
                       int perturb) {
  // Features come from the 3D *global placement* (the prediction-time input);
  // labels come from post-CTS routed congestion (the post-route truth).
  Netlist netlist = design;
  Placement3D placement = place_pseudo3d(netlist, params, seed,
                                         /*legalized=*/false, cfg.num_tiers);
  if (perturb > 0) {
    // Local perturbation: emulate the moves the DCO spreader makes so the
    // model learns the congestion response to them (see DatasetConfig).
    // Odd rounds use incoherent jitter; even rounds use coherent "clump"
    // pulls toward random attractors — without the latter, no training
    // layout ever exhibits density hotspots (the placer always spreads) and
    // the model never learns that concentrating cells raises congestion,
    // which lets gradient optimization exploit it.
    Rng prng(seed * 0x9E3779B9ull + static_cast<std::uint64_t>(perturb));
    const double sx = cfg.perturb_sigma_frac * placement.outline.width();
    const double sy = cfg.perturb_sigma_frac * placement.outline.height();
    const bool clump = (perturb % 2) == 0;
    std::vector<Point> attractors;
    if (clump) {
      const int n_attract = 1 + static_cast<int>(prng.index(3));
      for (int a = 0; a < n_attract; ++a)
        attractors.push_back({prng.uniform(placement.outline.xlo,
                                           placement.outline.xhi),
                              prng.uniform(placement.outline.ylo,
                                           placement.outline.yhi)});
    }
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      if (!netlist.is_movable(id)) continue;
      if (clump) {
        if (prng.bernoulli(0.35)) {
          // Pull toward the nearest attractor.
          const Point& p = placement.xy[ci];
          Point best = attractors[0];
          for (const Point& a : attractors)
            if (manhattan(p, a) < manhattan(p, best)) best = a;
          const double lam = prng.uniform(0.3, 0.8);
          placement.xy[ci] = {p.x + lam * (best.x - p.x),
                              p.y + lam * (best.y - p.y)};
        }
      } else if (prng.bernoulli(cfg.perturb_move_prob)) {
        placement.xy[ci].x = std::clamp(placement.xy[ci].x + prng.normal(0.0, sx),
                                        placement.outline.xlo,
                                        placement.outline.xhi);
        placement.xy[ci].y = std::clamp(placement.xy[ci].y + prng.normal(0.0, sy),
                                        placement.outline.ylo,
                                        placement.outline.yhi);
      }
      if (prng.bernoulli(cfg.perturb_tier_prob)) {
        // Two tiers: flip (no extra RNG draw, preserving the legacy stream).
        // K > 2: jump to a uniformly random *other* tier.
        if (placement.num_tiers == 2) {
          placement.tier[ci] = 1 - placement.tier[ci];
        } else {
          const int k = placement.num_tiers;
          const int step =
              1 + static_cast<int>(prng.index(static_cast<std::uint64_t>(k - 1)));
          placement.tier[ci] = (placement.tier[ci] + step) % k;
        }
      }
    }
  }
  const GCellGrid grid(placement.outline, cfg.grid_nx, cfg.grid_ny);

  FeatureMaps fm = compute_feature_maps(netlist, placement, grid);

  // Ground truth: complete CTS + legalization + routing (§III-A).
  run_cts(netlist, placement);
  legalize_all(netlist, placement, params);
  RouteResult route = global_route(netlist, placement, grid, cfg.router);

  DataSample s;
  const int num_tiers = fm.num_tiers();
  s.features.resize(static_cast<std::size_t>(num_tiers));
  s.labels.resize(static_cast<std::size_t>(num_tiers));
  for (int die = 0; die < num_tiers; ++die) {
    const auto d = static_cast<std::size_t>(die);
    s.features[d] = resize_nearest(fm.die[d], cfg.net_h, cfg.net_w);
    nn::Tensor label({1, 1, grid.ny(), grid.nx()});
    auto dst = label.data();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = route.congestion[d][i];
    s.labels[d] = resize_nearest(label, cfg.net_h, cfg.net_w);
  }
  return s;
}

std::vector<DataSample> build_dataset(const Netlist& design,
                                      const DatasetConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<DataSample> out;
  out.reserve(static_cast<std::size_t>(cfg.layouts) *
              static_cast<std::size_t>(1 + cfg.perturbed_per_layout));
  for (int i = 0; i < cfg.layouts; ++i) {
    // First layout uses the default configuration; the rest sample Table I.
    const PlacementParams params =
        i == 0 ? PlacementParams{} : PlacementParams::sample(rng);
    out.push_back(make_sample(design, params, cfg, cfg.seed * 977 + i));
    for (int p = 1; p <= cfg.perturbed_per_layout; ++p)
      out.push_back(make_sample(design, params, cfg, cfg.seed * 977 + i, p));
  }
  return out;
}

void split_dataset(const std::vector<DataSample>& all, double test_fraction,
                   std::vector<const DataSample*>& train,
                   std::vector<const DataSample*>& test) {
  train.clear();
  test.clear();
  const auto n_test = static_cast<std::size_t>(
      test_fraction * static_cast<double>(all.size()));
  for (std::size_t i = 0; i < all.size(); ++i) {
    // Deterministic interleaved split: every k-th sample goes to test.
    const bool is_test =
        n_test > 0 && (i % std::max<std::size_t>(all.size() / n_test, 1)) == 0 &&
        test.size() < n_test;
    (is_test ? test : train).push_back(&all[i]);
  }
}

}  // namespace dco3d
