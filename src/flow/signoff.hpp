#pragma once
// Post-route signoff optimization — substitute for ICC2's post-CTS
// optimization and timing-closure ("signoff") steps in the Pin-3D flow.
//
// The optimizer iterates STA with routed-detour-aware net lengths and:
//   * upsizes cells on violating paths (drive-strength ladder walks),
//   * downsizes comfortably-positive-slack cells when low-power is enabled,
//   * applies useful skew (flow.enable_ccd) by retarding capture clocks of
//     violating registers within a skew budget.
//
// Congestion couples in through the per-net detour factors: nets routed
// through overflowed GCells are lengthened, so congested designs burn more
// ECO effort and close worse — the end-of-flow effect Table III measures.

#include "netlist/netlist.hpp"
#include "route/router.hpp"
#include "timing/sta.hpp"

namespace dco3d {

struct SignoffConfig {
  int max_iterations = 4;
  double upsize_slack_threshold_ps = 0.0;   // fix cells below this slack
  double downsize_slack_margin_ps = 80.0;   // only downsize above this
  bool enable_low_power_recovery = false;
  bool enable_useful_skew = false;          // flow.enable_ccd
  double useful_skew_budget_ps = 15.0;
  double detour_overflow_penalty = 0.03;    // extra detour per overflowed edge
};

struct SignoffResult {
  TimingResult timing;      // final STA
  std::size_t upsized = 0;
  std::size_t downsized = 0;
  std::size_t skewed = 0;
  std::vector<double> net_length_scale;  // final detour factors
};

/// Compute per-net detour factors from a routing result: routed length over
/// HPWL, inflated further for overflowed-edge crossings (ECO detours).
std::vector<double> detour_factors(const Netlist& netlist,
                                   const Placement3D& placement,
                                   const RouteResult& route,
                                   double overflow_penalty);

/// Run the signoff loop. Mutates netlist (cell sizing) and `skew_ps` when
/// useful skew is enabled.
SignoffResult run_signoff(Netlist& netlist, const Placement3D& placement,
                          const RouteResult& route, const TimingConfig& timing_cfg,
                          std::vector<double>& skew_ps, const SignoffConfig& cfg);

}  // namespace dco3d
