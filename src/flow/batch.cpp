#include "flow/batch.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "util/parallel.hpp"

namespace dco3d {

std::uint64_t batch_seed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64 over (base + golden-ratio stride * index): well-mixed,
  // collision-free per index, and stable when the job list grows.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;  // seed 0 is reserved as "unset" by some generators
}

std::vector<BatchJob> make_generator_jobs(const std::vector<DesignKind>& kinds,
                                          double scale, const FlowConfig& base,
                                          std::uint64_t base_seed,
                                          double calibration_pctile) {
  std::vector<BatchJob> jobs;
  jobs.reserve(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    DesignSpec spec = spec_for(kinds[i], scale);
    BatchJob job;
    job.name = spec.name;
    job.design = generate_design(spec);
    job.cfg = base;
    job.cfg.seed = batch_seed(base_seed, i);
    const Placement3D ref =
        place_pseudo3d(job.design, job.cfg.place_params, job.cfg.seed,
                       /*legalized=*/true, job.cfg.num_tiers);
    job.cfg.router = calibrated_router(job.design, ref, job.cfg.grid_nx,
                                       calibration_pctile);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchEntry> run_pipeline_jobs(
    const std::vector<PipelineJob>& jobs) {
  std::vector<BatchEntry> entries(jobs.size());
  // One pool chunk per job: flows nest their own parallel kernels inline on
  // the worker lane, so jobs are the unit of concurrency. Entries are
  // written disjointly per chunk — no synchronization needed.
  util::parallel_for(
      0, static_cast<std::int64_t>(jobs.size()), 1,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t j = b; j < e; ++j) {
          const PipelineJob& job = jobs[static_cast<std::size_t>(j)];
          BatchEntry& entry = entries[static_cast<std::size_t>(j)];
          entry.name = job.name;
          const auto t0 = std::chrono::steady_clock::now();
          try {
            FlowContext ctx = job.make_context();
            entry.cells = ctx.netlist.num_cells();
            entry.nets = ctx.netlist.num_nets();
            PipelineOptions po = job.opts;
            po.trace = job.collect_trace ? &entry.trace : nullptr;
            po.info = &entry.info;
            entry.result = pin3d_pipeline().run(ctx, po);
          } catch (const StatusError& err) {
            entry.status = err.status();
          } catch (const std::exception& err) {
            entry.status = Status::internal(err.what());
          }
          entry.wall_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        }
      });
  return entries;
}

std::vector<BatchEntry> run_many(const std::vector<BatchJob>& jobs,
                                 const BatchOptions& opts) {
  std::vector<PipelineJob> pjobs;
  pjobs.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    PipelineJob pj;
    pj.name = job.name;
    pj.make_context = [&job]() {
      FlowContext ctx = make_flow_context(job.design, job.cfg, job.optimizer);
      ctx.design_name = job.name;
      ctx.optimizer_tag = job.optimizer_tag;
      return ctx;
    };
    pj.opts.stop_after = opts.stop_after;
    if (opts.cache) {
      pj.opts.cache = opts.cache;
      pj.opts.auto_resume = true;
    }
    pj.collect_trace = opts.collect_trace;
    pjobs.push_back(std::move(pj));
  }
  return run_pipeline_jobs(pjobs);
}

std::string batch_summary_table(const std::vector<BatchEntry>& entries) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line,
                "%-10s %8s %8s | %9s %8s %9s %10s | %9s %8s %9s %10s | %9s\n",
                "design", "cells", "nets", "ap.ovf", "ap.wns", "ap.power",
                "ap.WL", "so.ovf", "so.wns", "so.power", "so.WL", "wall(ms)");
  os << line;
  for (const BatchEntry& e : entries) {
    if (!e.status.ok()) {
      std::snprintf(line, sizeof line, "%-10s %8zu %8zu | FAILED: %s\n",
                    e.name.c_str(), e.cells, e.nets,
                    e.status.to_string().c_str());
      os << line;
      continue;
    }
    const StageMetrics& a = e.result.after_place;
    const StageMetrics& s = e.result.signoff;
    std::snprintf(line, sizeof line,
                  "%-10s %8zu %8zu | %9.0f %8.2f %9.3f %10.1f | %9.0f %8.2f "
                  "%9.3f %10.1f | %9.1f\n",
                  e.name.c_str(), e.cells, e.nets, a.overflow, a.wns_ps,
                  a.power_mw, a.wirelength_um, s.overflow, s.wns_ps,
                  s.power_mw, s.wirelength_um, e.wall_ms);
    os << line;
  }
  return os.str();
}

}  // namespace dco3d
