#include "flow/signoff.hpp"

#include <algorithm>
#include <limits>
#include <cmath>

namespace dco3d {

std::vector<double> detour_factors(const Netlist& netlist,
                                   const Placement3D& placement,
                                   const RouteResult& route,
                                   double overflow_penalty) {
  std::vector<double> scale(netlist.num_nets(), 1.0);
  if (route.net_routed_wl.empty()) return scale;
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    const double hpwl = net_hpwl(netlist, static_cast<NetId>(ni), placement);
    double s = 1.0;
    if (hpwl > 1e-9 && ni < route.net_routed_wl.size())
      s = std::max(route.net_routed_wl[ni] / hpwl, 1.0);
    if (ni < route.net_overflow_crossings.size())
      s *= 1.0 + overflow_penalty * route.net_overflow_crossings[ni];
    scale[ni] = std::min(s, 4.0);  // cap pathological single-net detours
  }
  return scale;
}

SignoffResult run_signoff(Netlist& netlist, const Placement3D& placement,
                          const RouteResult& route, const TimingConfig& timing_cfg,
                          std::vector<double>& skew_ps, const SignoffConfig& cfg) {
  SignoffResult res;
  res.net_length_scale =
      detour_factors(netlist, placement, route, cfg.detour_overflow_penalty);

  // Track the best netlist/skew state so an ECO step that regresses timing
  // is rolled back (real signoff engines are similarly monotone).
  auto snapshot_types = [&]() {
    std::vector<CellTypeId> types(netlist.num_cells());
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
      types[ci] = netlist.cell(static_cast<CellId>(ci)).type;
    return types;
  };
  std::vector<CellTypeId> best_types = snapshot_types();
  std::vector<double> best_skew = skew_ps;
  double best_tns = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    TimingResult t =
        run_sta(netlist, placement, timing_cfg, &skew_ps, &res.net_length_scale);
    res.timing = t;
    if (t.tns_ps > best_tns) {
      best_tns = t.tns_ps;
      best_types = snapshot_types();
      best_skew = skew_ps;
    } else if (iter > 0) {
      break;  // regressed or plateaued; best state is restored below
    }
    if (t.violating_endpoints == 0 && !cfg.enable_low_power_recovery) break;

    // Gate sizing: upsize drivers on violating paths. Work on the worst
    // cells first; cap per-iteration changes so sizing converges.
    std::vector<CellId> order;
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      if (netlist.is_io(id) || netlist.is_macro(id)) continue;
      if (t.cell_slack[ci] < cfg.upsize_slack_threshold_ps) order.push_back(id);
    }
    std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
      return t.cell_slack[static_cast<std::size_t>(a)] <
             t.cell_slack[static_cast<std::size_t>(b)];
    });
    const std::size_t budget = std::max<std::size_t>(order.size() / 2, 64);
    std::size_t changed = 0;
    for (CellId id : order) {
      if (changed >= budget) break;
      const CellTypeId up = netlist.library().upsize(netlist.cell(id).type);
      if (up >= 0) {
        netlist.cell(id).type = up;
        ++res.upsized;
        ++changed;
      }
    }

    // Low-power recovery: downsize cells with comfortable slack.
    if (cfg.enable_low_power_recovery) {
      for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
        const auto id = static_cast<CellId>(ci);
        if (netlist.is_io(id) || netlist.is_macro(id)) continue;
        if (t.cell_slack[ci] > cfg.downsize_slack_margin_ps) {
          const CellTypeId dn = netlist.library().downsize(netlist.cell(id).type);
          if (dn >= 0) {
            netlist.cell(id).type = dn;
            ++res.downsized;
          }
        }
      }
    }

    // Useful skew (concurrent clock & data): retard the capture clock of
    // violating registers within the budget.
    if (cfg.enable_useful_skew && !skew_ps.empty()) {
      for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
        const auto id = static_cast<CellId>(ci);
        if (!netlist.is_sequential(id)) continue;
        const double slack = t.cell_slack[ci];
        if (slack < 0.0) {
          const double adj = std::min(-slack * 0.5, cfg.useful_skew_budget_ps);
          skew_ps[ci] += adj;
          ++res.skewed;
        }
      }
    }
  }

  // Restore the best state seen (unless low-power recovery deliberately
  // trades slack for power, in which case keep the final state).
  {
    TimingResult final_t =
        run_sta(netlist, placement, timing_cfg, &skew_ps, &res.net_length_scale);
    if (final_t.tns_ps < best_tns && !cfg.enable_low_power_recovery) {
      for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
        netlist.cell(static_cast<CellId>(ci)).type = best_types[ci];
      skew_ps = best_skew;
    }
  }
  res.timing = run_sta(netlist, placement, timing_cfg, &skew_ps,
                       &res.net_length_scale);
  return res;
}

}  // namespace dco3d
