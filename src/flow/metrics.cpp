#include "flow/metrics.hpp"

#include <cstdio>

namespace dco3d {

std::string StageMetrics::row(const std::string& label) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-16s %9.0f %8.2f %8.0f %8.0f %10.2f %12.1f %9.2f %12.1f",
                label.c_str(), overflow, ovf_gcell_pct, h_overflow, v_overflow,
                wns_ps, tns_ps, power_mw, wirelength_um);
  return buf;
}

}  // namespace dco3d
