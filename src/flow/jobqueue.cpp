#include "flow/jobqueue.hpp"

#include <algorithm>

namespace dco3d {

JobQueue::JobQueue(std::size_t max_depth, int workers)
    : max_depth_(std::max<std::size_t>(1, max_depth)),
      workers_(std::max(1, workers)) {}

double JobQueue::retry_hint_locked() const {
  // A full queue clears in ~depth/workers service times; add one service
  // time for the job that would run after the backlog. Clamped so a cold
  // EWMA can neither tell clients to hammer the server nor to go away for
  // an hour.
  const double est =
      service_ewma_ms_ *
      (static_cast<double>(items_.size()) / workers_ + 1.0);
  return std::clamp(est, 50.0, 30000.0);
}

AdmissionDecision JobQueue::submit(std::uint64_t job, int priority) {
  std::lock_guard<std::mutex> lk(mu_);
  AdmissionDecision d;
  counters_.submitted++;
  if (stopped_ || draining_) {
    counters_.shed++;
    d.depth = items_.size();
    d.retry_after_ms = retry_hint_locked();
    d.status = Status::unavailable("server is draining — resubmit later");
    return d;
  }
  if (items_.size() >= max_depth_) {
    counters_.shed++;
    d.depth = items_.size();
    d.retry_after_ms = retry_hint_locked();
    d.status = Status::unavailable(
        "queue full (depth " + std::to_string(items_.size()) + "/" +
        std::to_string(max_depth_) + ") — load shed, retry after backoff");
    return d;
  }
  counters_.admitted++;
  items_.push_back(Item{job, priority, next_seq_++});
  d.admitted = true;
  d.depth = items_.size();
  cv_.notify_one();
  return d;
}

bool JobQueue::pop(std::uint64_t& job) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return stopped_ || !items_.empty(); });
  if (stopped_) return false;
  // Highest priority first; FIFO (lowest seq) within a priority.
  auto best = items_.begin();
  for (auto it = std::next(best); it != items_.end(); ++it)
    if (it->priority > best->priority ||
        (it->priority == best->priority && it->seq < best->seq))
      best = it;
  job = best->job;
  items_.erase(best);
  counters_.popped++;
  ++in_flight_;
  return true;
}

void JobQueue::job_done(double service_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  service_ewma_ms_ = 0.7 * service_ewma_ms_ + 0.3 * service_ms;
  if (--in_flight_ == 0) idle_cv_.notify_all();
}

bool JobQueue::cancel(std::uint64_t job) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->job == job) {
      items_.erase(it);
      counters_.cancelled++;
      return true;
    }
  }
  return false;
}

std::vector<std::uint64_t> JobQueue::drain() {
  std::lock_guard<std::mutex> lk(mu_);
  draining_ = true;
  std::vector<std::uint64_t> rejected;
  rejected.reserve(items_.size());
  for (const Item& it : items_) rejected.push_back(it.job);
  items_.clear();
  return rejected;
}

void JobQueue::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

void JobQueue::stop() {
  std::lock_guard<std::mutex> lk(mu_);
  stopped_ = true;
  cv_.notify_all();
}

JobQueueStats JobQueue::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  JobQueueStats s = counters_;
  s.depth = items_.size();
  s.in_flight = in_flight_;
  s.draining = draining_ || stopped_;
  s.service_ewma_ms = service_ewma_ms_;
  return s;
}

}  // namespace dco3d
