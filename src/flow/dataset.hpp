#pragma once
// Dataset construction for supervised congestion prediction (§III-A):
// sample Table-I placement parameters, run the pseudo-3D placement, complete
// CTS + routing for ground truth, and emit (feature maps, congestion labels)
// pairs resized to the network resolution.

#include <vector>

#include "flow/pin3d.hpp"
#include "route/router.hpp"
#include "grid/feature_maps.hpp"
#include "netlist/generators.hpp"
#include "nn/tensor.hpp"

namespace dco3d {

/// One training sample: per-die features [1,7,H,W] and labels [1,1,H,W],
/// one entry per tier (two for the classic stack).
struct DataSample {
  std::vector<nn::Tensor> features;
  std::vector<nn::Tensor> labels;

  int num_tiers() const { return static_cast<int>(features.size()); }
};

struct DatasetConfig {
  int num_tiers = 2;       // stacked dies of the sampled placements
  int layouts = 24;        // paper: 300 per design; scaled (DESIGN.md)
  int grid_nx = 64;        // GCell resolution of the raw maps
  int grid_ny = 64;
  int net_h = 64;          // CNN input resolution (paper: 224)
  int net_w = 64;
  RouterConfig router;     // ground-truth routing configuration
  // Local-perturbation augmentation: for each sampled layout, additionally
  // emit this many copies with random cell shifts / tier flips before
  // routing. The congestion optimizer (Alg. 2) queries the predictor on
  // exactly such locally-perturbed placements, so without these samples the
  // gradient-based spreader can walk outside the training distribution and
  // "fool" the model (predicted congestion drops while routed congestion
  // explodes). This plays the role the paper's 300-layout diversity plays.
  int perturbed_per_layout = 2;
  double perturb_sigma_frac = 0.04;  // position jitter, fraction of die size
  double perturb_move_prob = 0.5;    // fraction of cells jittered
  double perturb_tier_prob = 0.04;   // fraction of cells flipped to other die
  std::uint64_t seed = 7;
};

/// Build a dataset from one design by sampling placement parameters.
std::vector<DataSample> build_dataset(const Netlist& design,
                                      const DatasetConfig& cfg);

/// Build a single sample from a specific placement configuration.
/// `perturb` > 0 applies that many rounds of local perturbation noise.
DataSample make_sample(const Netlist& design, const PlacementParams& params,
                       const DatasetConfig& cfg, std::uint64_t seed,
                       int perturb = 0);

/// Split helper: deterministic train/test partition (§V-A reserves 20%).
void split_dataset(const std::vector<DataSample>& all, double test_fraction,
                   std::vector<const DataSample*>& train,
                   std::vector<const DataSample*>& test);

}  // namespace dco3d
