#pragma once
// Per-stage observability for the stage-graph flow engine: each Pipeline
// stage emits one StageTraceEntry capturing wall time, the arena-allocator
// and thread-pool counter deltas over the stage, and whatever scalar metrics
// the stage published. Entries serialize to JSON-lines (one object per line,
// schema "dco3d-stage-trace-v1", documented in docs/flow.md) so traces can
// be tailed, grepped, and merged across concurrent batch runs.
//
// tools/check_trace_schema validates an emitted file against the schema; the
// trace_schema ctest runs it on a real flow trace.

#include <string>
#include <utility>
#include <vector>

#include "util/arena.hpp"
#include "util/parallel.hpp"

namespace dco3d {

inline constexpr const char* kStageTraceSchema = "dco3d-stage-trace-v1";

struct StageTraceEntry {
  std::string design;  // batch job name; empty for single-design runs
  std::string stage;
  int index = 0;       // position in the pipeline
  bool cached = false; // satisfied from the artifact cache (resume), not run
  double wall_ms = 0.0;
  int threads = 1;

  // Arena counters: requests/pool_hits/heap_allocs are deltas over the
  // stage; live/peak/pooled bytes are the values at stage end.
  util::ArenaStats arena;
  // Thread-pool counters, as deltas over the stage.
  util::PoolStats pool;

  // Stage-published scalars (metrics stages: overflow/wns/...; cts: buffer
  // counts; ...). Kept ordered so emitted JSON is deterministic.
  std::vector<std::pair<std::string, double>> metrics;

  /// One JSON object, no trailing newline.
  std::string to_json() const;
};

/// Append entries to a JSON-lines file (created if absent). Throws
/// StatusError (kIoError) on stream failure.
void append_trace_file(const std::string& path,
                       const std::vector<StageTraceEntry>& entries);

struct ArtifactCacheStats;

/// Synthetic trailing entry (stage "cache-footer", index = one past the
/// last pipeline stage) summarizing ArtifactCache effectiveness for a flow
/// or batch run: hits/misses/saves/evictions/entries/bytes as metrics. It
/// satisfies the ordinary stage-trace schema, so existing consumers just see
/// one more entry; docs/flow.md documents the metric keys.
StageTraceEntry cache_footer_entry(const std::string& design, int index,
                                   const ArtifactCacheStats& stats);

}  // namespace dco3d
