#pragma once
// Bounded priority admission queue for the resident server: jobs enter
// through explicit admission control (bounded depth; excess load is shed
// with a Retry-After-style backoff hint instead of queuing unboundedly),
// workers pop highest-priority-first (FIFO within a priority), and drain
// atomically flips the queue into reject-everything mode while returning
// the entries that were still waiting so the caller can fail them with a
// retriable status. The queue carries opaque job handles (the server maps
// them back to its job records); service-time feedback drives the backoff
// estimate via an EWMA.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/status.hpp"

namespace dco3d {

struct AdmissionDecision {
  bool admitted = false;
  std::size_t depth = 0;        // queued entries after the decision
  double retry_after_ms = 0.0;  // backoff hint when shed; 0 when admitted
  Status status;                // kUnavailable (retriable) when not admitted
};

struct JobQueueStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;       // rejected at admission (queue full/draining)
  std::uint64_t cancelled = 0;  // removed while queued
  std::uint64_t popped = 0;
  std::size_t depth = 0;
  int in_flight = 0;
  bool draining = false;
  double service_ewma_ms = 0.0;
};

class JobQueue {
 public:
  /// `max_depth` bounds the number of *queued* (not yet running) jobs;
  /// `workers` scales the retry-after estimate (a full queue clears in
  /// roughly depth/workers service times).
  JobQueue(std::size_t max_depth, int workers);

  /// Admission control: enqueue, or shed with a backoff hint when the queue
  /// is full or draining. Never blocks.
  AdmissionDecision submit(std::uint64_t job, int priority);

  /// Block until a job is available, then pop the highest-priority one (FIFO
  /// within a priority) and mark it in-flight. Returns false once the queue
  /// is stopped — the worker-loop exit condition.
  bool pop(std::uint64_t& job);

  /// Completion feedback for the job most recently popped by this worker:
  /// decrements in-flight and folds the service time into the EWMA that
  /// backs retry_after_ms hints.
  void job_done(double service_ms);

  /// Remove a still-queued job. False if it already started (or finished).
  bool cancel(std::uint64_t job);

  /// Stop admitting, return-and-clear everything still queued (the caller
  /// rejects them with a retriable status). Idempotent.
  std::vector<std::uint64_t> drain();

  /// Block until no job is in flight. Meaningful after drain().
  void wait_idle();

  /// Wake all poppers; pop returns false from now on. Idempotent.
  void stop();

  JobQueueStats stats() const;

 private:
  double retry_hint_locked() const;

  const std::size_t max_depth_;
  const int workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       // queue state changed (pop/stop)
  std::condition_variable idle_cv_;  // in-flight count reached zero
  struct Item {
    std::uint64_t job;
    int priority;
    std::uint64_t seq;
  };
  std::vector<Item> items_;
  std::uint64_t next_seq_ = 0;
  int in_flight_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  double service_ewma_ms_ = 1000.0;  // prior until real completions arrive
  JobQueueStats counters_;
};

}  // namespace dco3d
