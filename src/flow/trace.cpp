#include "flow/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "flow/cache.hpp"
#include "util/status.hpp"

namespace dco3d {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string num(double v) {
  // JSON has no NaN/Inf literals; clamp to null-free sentinel 0 with a flag
  // bit would complicate consumers, so emit 0 for non-finite (stages publish
  // finite metrics in practice; the guard layer recovers NaNs upstream).
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

std::string StageTraceEntry::to_json() const {
  std::string j = "{\"schema\":\"";
  j += kStageTraceSchema;
  j += "\"";
  if (!design.empty()) {
    j += ",\"design\":";
    append_escaped(j, design);
  }
  j += ",\"stage\":";
  append_escaped(j, stage);
  j += ",\"index\":" + std::to_string(index);
  j += ",\"cached\":";
  j += cached ? "true" : "false";
  j += ",\"wall_ms\":" + num(wall_ms);
  j += ",\"threads\":" + std::to_string(threads);
  j += ",\"arena\":{\"requests\":" + std::to_string(arena.requests) +
       ",\"pool_hits\":" + std::to_string(arena.pool_hits) +
       ",\"heap_allocs\":" + std::to_string(arena.heap_allocs) +
       ",\"live_bytes\":" + std::to_string(arena.live_bytes) +
       ",\"peak_bytes\":" + std::to_string(arena.peak_bytes) +
       ",\"pooled_bytes\":" + std::to_string(arena.pooled_bytes) + "}";
  j += ",\"pool\":{\"dispatches\":" + std::to_string(pool.dispatches) +
       ",\"inline_runs\":" + std::to_string(pool.inline_runs) +
       ",\"chunks\":" + std::to_string(pool.chunks) + "}";
  j += ",\"metrics\":{";
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) j += ',';
    first = false;
    append_escaped(j, k);
    j += ':' + num(v);
  }
  j += "}}";
  return j;
}

StageTraceEntry cache_footer_entry(const std::string& design, int index,
                                   const ArtifactCacheStats& stats) {
  StageTraceEntry e;
  e.design = design;
  e.stage = "cache-footer";
  e.index = index;
  e.threads = util::num_threads();
  e.metrics.emplace_back("cache_hits", static_cast<double>(stats.loads));
  e.metrics.emplace_back("cache_misses", static_cast<double>(stats.misses));
  e.metrics.emplace_back("cache_saves", static_cast<double>(stats.saves));
  e.metrics.emplace_back("cache_evictions",
                         static_cast<double>(stats.evictions));
  e.metrics.emplace_back("cache_entries", static_cast<double>(stats.entries));
  e.metrics.emplace_back("cache_bytes", static_cast<double>(stats.bytes));
  return e;
}

void append_trace_file(const std::string& path,
                       const std::vector<StageTraceEntry>& entries) {
  std::ofstream os(path, std::ios::app);
  if (!os)
    throw StatusError(Status::io_error("trace: cannot open " + path));
  for (const StageTraceEntry& e : entries) os << e.to_json() << '\n';
  os.flush();
  if (!os) throw StatusError(Status::io_error("trace: write failed on " + path));
}

}  // namespace dco3d
