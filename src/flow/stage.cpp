#include "flow/stage.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>

#include "flow/artifact.hpp"
#include "flow/cache.hpp"
#include "io/design_io.hpp"
#include "place/legalize.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace dco3d {

namespace {

/// Lazily build the GCell grid from the current placement outline. The dco
/// stage does this in the full flow; standalone pipelines (route-only) hit
/// it on their first grid consumer.
void ensure_grid(FlowContext& c) {
  if (c.grid_valid) return;
  c.res.grid = GCellGrid(c.placement.outline, c.cfg.grid_nx, c.cfg.grid_ny);
  c.grid_valid = true;
}

/// Zero-mean skew normalization over sequential cells (macros track the
/// shift too) — preserves the ideal-clock period so only relative insertion
/// delays remain. Exact transcription of the pre-refactor monolith.
void normalize_skew(const Netlist& netlist, std::vector<double>& skew) {
  if (skew.empty()) return;
  double mean = 0.0;
  std::size_t n = 0;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    if (netlist.is_sequential(static_cast<CellId>(ci))) {
      mean += skew[ci];
      ++n;
    }
  }
  if (n > 0) {
    mean /= static_cast<double>(n);
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
      if (netlist.is_sequential(static_cast<CellId>(ci)) ||
          netlist.is_macro(static_cast<CellId>(ci)))
        skew[ci] -= mean;
  }
}

void publish_metrics(FlowContext& c, const StageMetrics& m) {
  c.publish("overflow", m.overflow);
  c.publish("ovf_gcell_pct", m.ovf_gcell_pct);
  c.publish("wns_ps", m.wns_ps);
  c.publish("tns_ps", m.tns_ps);
  c.publish("power_mw", m.power_mw);
  c.publish("wirelength_um", m.wirelength_um);
}

// ---------------------------------------------------------------------------
// Cache-key serialization. One helper per configuration group; flow_cache_key
// concatenates all of them (byte-identical to the pre-refactor single-stream
// format), and the stage key domains reuse them so a knob can never be
// serialized two different ways.

std::ostringstream key_stream() {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  return os;
}

std::string params_key(const FlowContext& c) {
  auto os = key_stream();
  os << "|params";
  for (double v : c.cfg.place_params.encode()) os << ' ' << v;
  return os.str();
}

std::string timing_key(const FlowContext& c) {
  const TimingConfig& t = c.cfg.timing;
  auto os = key_stream();
  os << "|timing " << t.clock_period_ps << ' ' << t.wire_cap_per_um << ' '
     << t.wire_res_per_um << ' ' << t.via_delay_ps << ' ' << t.via_cap_ff
     << ' ' << t.setup_ps << ' ' << t.clk_to_q_ps << ' ' << t.base_slew_ps
     << ' ' << t.slew_impact << ' ' << t.activity << ' ' << t.vdd;
  return os.str();
}

std::string router_key(const FlowContext& c) {
  const RouterConfig& r = c.cfg.router;
  auto os = key_stream();
  os << "|router " << r.h_capacity << ' ' << r.v_capacity << ' '
     << r.macro_capacity_factor << ' ' << r.rrr_rounds << ' '
     << r.history_increment << ' ' << r.present_penalty << ' '
     << r.maze_margin;
  return os.str();
}

std::string cts_key(const FlowContext& c) {
  const CtsConfig& ct = c.cfg.cts;
  auto os = key_stream();
  os << "|cts " << ct.max_sinks_per_leaf << ' ' << ct.buffer_delay_ps << ' '
     << ct.wire_delay_per_um << ' ' << ct.buffer_drive;
  return os.str();
}

std::string signoff_key(const FlowContext& c) {
  const SignoffConfig& so = c.cfg.signoff;
  auto os = key_stream();
  os << "|signoff " << so.max_iterations << ' ' << so.upsize_slack_threshold_ps
     << ' ' << so.downsize_slack_margin_ps << ' '
     << so.enable_low_power_recovery << ' ' << so.enable_useful_skew << ' '
     << so.useful_skew_budget_ps << ' ' << so.detour_overflow_penalty;
  return os.str();
}

std::string grid_key(const FlowContext& c) {
  auto os = key_stream();
  os << "|grid " << c.cfg.grid_nx << ' ' << c.cfg.grid_ny;
  return os.str();
}

std::string opt_key(const FlowContext& c) {
  return "|opt " + c.optimizer_tag;
}

/// Fallback domain for stages without a declared one: the full configuration
/// surface. Correct for any stage body; forfeits prefix sharing.
std::string full_config_key(const FlowContext& c) {
  return params_key(c) + timing_key(c) + router_key(c) + cts_key(c) +
         signoff_key(c) + grid_key(c) + opt_key(c);
}

std::vector<Stage> make_pin3d_stages() {
  std::vector<Stage> s;

  s.emplace_back("place3d", [](FlowContext& c) {
    // Un-legalized global placement: the DCO hook operates pre-legalization.
    c.placement = place_pseudo3d(c.netlist, c.cfg.place_params, c.cfg.seed,
                                 false, c.cfg.num_tiers);
    c.publish("cells", static_cast<double>(c.netlist.num_cells()));
    c.publish("nets", static_cast<double>(c.netlist.num_nets()));
    c.publish("tiers", static_cast<double>(c.placement.num_tiers));
  }, params_key);

  s.emplace_back("dco", [](FlowContext& c) {
    if (c.optimizer) c.optimizer(c.netlist, c.placement);
    ensure_grid(c);
    c.res.global_placement = c.placement;
    c.publish("hook_present", c.optimizer ? 1.0 : 0.0);
  }, [](const FlowContext& c) { return opt_key(c) + grid_key(c); });

  s.emplace_back("after-place-metrics", [](FlowContext& c) {
    // "after 3D placement optimization" view: legalize a copy and evaluate;
    // the flow itself continues from the global placement through CTS.
    ensure_grid(c);
    Placement3D legal = c.placement;
    legalize_all(c.netlist, legal, c.cfg.place_params);
    c.res.after_place = measure_stage(c.netlist, legal, c.res.grid,
                                      c.cfg.timing, c.cfg.router);
    publish_metrics(c, c.res.after_place);
  }, [](const FlowContext& c) {
    return params_key(c) + timing_key(c) + router_key(c) + grid_key(c);
  });

  s.emplace_back("cts", [](FlowContext& c) {
    c.res.cts = run_cts(c.netlist, c.placement, c.cfg.cts);
    c.skew = c.res.cts.skew_ps;
    normalize_skew(c.netlist, c.skew);
    c.publish("buffers_inserted",
              static_cast<double>(c.res.cts.buffers_inserted));
    c.publish("levels", static_cast<double>(c.res.cts.levels));
    c.publish("max_skew_ps", c.res.cts.max_skew_ps);
  }, cts_key);

  s.emplace_back("legalize", [](FlowContext& c) {
    legalize_all(c.netlist, c.placement, c.cfg.place_params);
  }, params_key);

  s.emplace_back("route", [](FlowContext& c) {
    ensure_grid(c);
    c.route = global_route(c.netlist, c.placement, c.res.grid, c.cfg.router);
    c.route_valid = true;
    c.publish("overflow", c.route.total_overflow);
    c.publish("ovf_gcell_pct", c.route.ovf_gcell_pct);
    c.publish("wirelength_um", c.route.wirelength);
    c.publish("num_3d_vias", static_cast<double>(c.route.num_3d_vias));
    // Per-tier / per-boundary breakdown for N-tier stacks. Keys are indexed
    // so the StageTrace schema stays flat: ovf_tier<t> is the overflow on
    // die t, vias_b<b> the via stacks crossing boundary b (between tiers b
    // and b+1), cut_b<b> the net cut count at that boundary.
    c.publish("tiers", static_cast<double>(c.route.num_tiers));
    for (int t = 0; t < c.route.num_tiers; ++t)
      c.publish("ovf_tier" + std::to_string(t),
                static_cast<std::size_t>(t) < c.route.tier_overflow.size()
                    ? c.route.tier_overflow[static_cast<std::size_t>(t)]
                    : 0.0);
    const std::vector<std::size_t> cuts =
        count_tier_pair_cuts(c.netlist, c.placement);
    for (int b = 0; b + 1 < c.route.num_tiers; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      c.publish("vias_b" + std::to_string(b),
                bi < c.route.vias_per_boundary.size()
                    ? static_cast<double>(c.route.vias_per_boundary[bi])
                    : 0.0);
      c.publish("cut_b" + std::to_string(b),
                bi < cuts.size() ? static_cast<double>(cuts[bi]) : 0.0);
    }
  }, [](const FlowContext& c) { return router_key(c) + grid_key(c); });

  s.emplace_back("signoff", [](FlowContext& c) {
    if (!c.route_valid)
      throw StatusError(Status::invalid_argument(
          "signoff stage requires the route stage's result"));
    SignoffConfig so = c.cfg.signoff;
    so.enable_useful_skew =
        so.enable_useful_skew || c.cfg.place_params.enable_ccd;
    so.enable_low_power_recovery = so.enable_low_power_recovery ||
                                   c.cfg.place_params.low_power_placement;
    c.res.signoff_detail = run_signoff(c.netlist, c.placement, c.route,
                                       c.cfg.timing, c.skew, so);
    c.publish("upsized", static_cast<double>(c.res.signoff_detail.upsized));
    c.publish("downsized",
              static_cast<double>(c.res.signoff_detail.downsized));
    c.publish("skewed", static_cast<double>(c.res.signoff_detail.skewed));
    c.publish("wns_ps", c.res.signoff_detail.timing.wns_ps);
    c.publish("tns_ps", c.res.signoff_detail.timing.tns_ps);
  }, [](const FlowContext& c) {
    // place_params matters here too: the enable_ccd / low_power_placement
    // flags fold into the effective SignoffConfig above.
    return signoff_key(c) + timing_key(c) + params_key(c);
  });

  s.emplace_back("final-metrics", [](FlowContext& c) {
    // Final view: re-route (sizing changed loads negligibly for the router,
    // but detours and overflow stand) and re-time with the final skew.
    ensure_grid(c);
    c.res.signoff = measure_stage(c.netlist, c.placement, c.res.grid,
                                  c.cfg.timing, c.cfg.router, &c.skew,
                                  &c.res.final_route);
    c.res.placement = c.placement;
    publish_metrics(c, c.res.signoff);
  }, [](const FlowContext& c) {
    return timing_key(c) + router_key(c) + grid_key(c);
  });

  return s;
}

}  // namespace

int Pipeline::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < stages_.size(); ++i)
    if (stages_[i].name() == name) return static_cast<int>(i);
  return -1;
}

std::string Pipeline::stage_names() const {
  std::string out;
  for (const Stage& s : stages_) {
    if (!out.empty()) out += ", ";
    out += s.name();
  }
  return out;
}

FlowResult Pipeline::run(FlowContext& ctx, const PipelineOptions& opts) const {
  if (stages_.empty())
    throw StatusError(Status::invalid_argument("pipeline has no stages"));
  if (!opts.resume_from.empty() && !opts.start_at.empty())
    throw StatusError(Status::invalid_argument(
        "resume_from and start_at are mutually exclusive"));

  const auto require_stage = [&](const std::string& name) {
    const int i = index_of(name);
    if (i < 0)
      throw StatusError(Status::invalid_argument(
          "unknown stage '" + name + "' (stages: " + stage_names() + ")"));
    return i;
  };

  // A shared ArtifactCache supplies the directory when the caller didn't.
  const std::string cache_dir =
      !opts.cache_dir.empty() ? opts.cache_dir
      : opts.cache            ? opts.cache->dir()
                              : std::string();

  int start = 0;
  int stop = static_cast<int>(stages_.size()) - 1;
  if (!opts.stop_after.empty()) stop = require_stage(opts.stop_after);
  if (!opts.start_at.empty()) start = require_stage(opts.start_at);

  // Per-stage rolling prefix keys: stage i's artifact is addressed by the
  // configuration surface stages 0..i actually read, so evaluations that
  // share a flow prefix (same placement knobs, different CTS/route knobs)
  // replay the shared stages from the cache. Computed once, up front — the
  // keys must reflect the pristine design, not a netlist some stage mutated.
  const std::vector<std::string> keys =
      cache_dir.empty() ? std::vector<std::string>()
                        : flow_stage_keys(ctx, *this);
  if (!opts.resume_from.empty()) {
    start = require_stage(opts.resume_from);
    if (start > 0) {
      if (cache_dir.empty())
        throw StatusError(Status::invalid_argument(
            "resume_from requires an artifact cache directory"));
      const std::string prev = stages_[static_cast<std::size_t>(start - 1)].name();
      const std::string rel =
          keys[static_cast<std::size_t>(start - 1)] + "/" + prev;
      if (!load_flow_artifact(cache_dir + "/" + rel, ctx))
        throw StatusError(Status::not_found(
            "no cached artifact for stage '" + prev + "' at " + cache_dir +
            "/" + rel + " (run the flow with the same cache directory first)"));
      if (opts.cache) opts.cache->on_loaded(rel);
    }
  }
  if (start > stop)
    throw StatusError(Status::invalid_argument(
        "start stage '" + stages_[static_cast<std::size_t>(start)].name() +
        "' comes after stop stage '" +
        stages_[static_cast<std::size_t>(stop)].name() + "'"));

  // Auto-resume (idempotent resubmission): probe for the deepest cached
  // artifact of this content key and continue right after it. A corrupt
  // artifact is deleted and probing continues shallower — a damaged cache
  // must never take the job (or the server) down.
  if (opts.auto_resume && !cache_dir.empty() && opts.resume_from.empty() &&
      opts.start_at.empty()) {
    for (int i = stop; i >= 0; --i) {
      const std::string rel = keys[static_cast<std::size_t>(i)] + "/" +
                              stages_[static_cast<std::size_t>(i)].name();
      bool loaded = false;
      try {
        loaded = load_flow_artifact(cache_dir + "/" + rel, ctx);
      } catch (const StatusError&) {
        std::error_code ec;
        std::filesystem::remove_all(cache_dir + "/" + rel, ec);
      }
      if (loaded) {
        if (opts.cache) opts.cache->on_loaded(rel);
        start = i + 1;  // may be stop+1: everything below was cached
        break;
      }
    }
  }

  const bool collect = opts.trace != nullptr || opts.on_trace != nullptr;
  const auto emit = [&](StageTraceEntry e) {
    if (opts.on_trace) opts.on_trace(e);
    if (opts.trace) opts.trace->push_back(std::move(e));
  };

  // Trace entries for stages satisfied from the cache (resume skipped them).
  if (collect) {
    for (int i = 0; i < start; ++i) {
      StageTraceEntry e;
      e.design = ctx.design_name;
      e.stage = stages_[static_cast<std::size_t>(i)].name();
      e.index = i;
      e.cached = true;
      e.threads = util::num_threads();
      emit(std::move(e));
    }
  }

  if (opts.info) {
    opts.info->first_stage = start;
    opts.info->stages_cached = start;
    opts.info->last_stage = start - 1;
  }

  for (int i = start; i <= stop; ++i) {
    // Per-job guards: a wall-clock deadline or a cooperative cancel stops
    // the run at a stage boundary and early-commits the results so far
    // instead of throwing — partial progress is a valid product.
    if (opts.deadline && opts.deadline->expired()) {
      if (opts.info) opts.info->deadline_hit = true;
      break;
    }
    if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
      if (opts.info) opts.info->cancelled = true;
      break;
    }

    const Stage& stage = stages_[static_cast<std::size_t>(i)];

    // Deterministic fault injection for the overload/recovery tests: a
    // stall models a slow stage (deadline pressure), a fail models a
    // diverged/broken stage that must stay isolated to its job.
    FaultInjector& fi = FaultInjector::instance();
    if (fi.should_fire(FaultSite::kFlowStageStall))
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          fi.param(FaultSite::kFlowStageStall)));
    if (fi.should_fire(FaultSite::kFlowStageFail))
      throw StatusError(Status::internal("injected failure in stage '" +
                                         stage.name() + "'"));

    ctx.stage_metrics.clear();
    const util::ArenaStats arena0 = util::Arena::instance().stats();
    const util::PoolStats pool0 = util::pool_stats();
    const auto t0 = std::chrono::steady_clock::now();

    stage.run(ctx);

    if (opts.info) {
      opts.info->last_stage = i;
      opts.info->stages_run++;
    }

    if (collect) {
      const auto t1 = std::chrono::steady_clock::now();
      const util::ArenaStats arena1 = util::Arena::instance().stats();
      const util::PoolStats pool1 = util::pool_stats();
      StageTraceEntry e;
      e.design = ctx.design_name;
      e.stage = stage.name();
      e.index = i;
      e.cached = false;
      e.wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      e.threads = util::num_threads();
      e.arena.requests = arena1.requests - arena0.requests;
      e.arena.pool_hits = arena1.pool_hits - arena0.pool_hits;
      e.arena.heap_allocs = arena1.heap_allocs - arena0.heap_allocs;
      e.arena.live_bytes = arena1.live_bytes;
      e.arena.peak_bytes = arena1.peak_bytes;
      e.arena.pooled_bytes = arena1.pooled_bytes;
      e.pool.dispatches = pool1.dispatches - pool0.dispatches;
      e.pool.inline_runs = pool1.inline_runs - pool0.inline_runs;
      e.pool.chunks = pool1.chunks - pool0.chunks;
      e.metrics = ctx.stage_metrics;
      emit(std::move(e));
    }

    if (!cache_dir.empty()) {
      const std::string rel =
          keys[static_cast<std::size_t>(i)] + "/" + stage.name();
      save_flow_artifact(cache_dir + "/" + rel, ctx);
      if (opts.cache) {
        // The stage body ran with caching active, i.e. its artifact was not
        // available — a cache miss, the counterpart of on_loaded above.
        opts.cache->on_miss();
        opts.cache->on_saved(rel);
      }
    }
  }
  return ctx.res;
}

const Pipeline& pin3d_pipeline() {
  static const Pipeline pipeline(make_pin3d_stages());
  return pipeline;
}

const Stage& pin3d_stage(const std::string& name) {
  const Pipeline& p = pin3d_pipeline();
  const int i = p.index_of(name);
  if (i < 0)
    throw StatusError(Status::invalid_argument(
        "unknown stage '" + name + "' (stages: " + p.stage_names() + ")"));
  return p.stages()[static_cast<std::size_t>(i)];
}

FlowContext make_flow_context(const Netlist& design, const FlowConfig& cfg,
                              PlacementOptimizer optimizer) {
  FlowContext ctx;
  ctx.cfg = cfg;
  ctx.optimizer = std::move(optimizer);
  ctx.netlist = design;  // private working copy; cts/signoff mutate it
  return ctx;
}

std::string flow_cache_key(const FlowContext& ctx) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  write_design(os, ctx.netlist);
  os << params_key(ctx) << timing_key(ctx) << router_key(ctx) << cts_key(ctx)
     << signoff_key(ctx) << grid_key(ctx) << "|tiers " << ctx.cfg.num_tiers
     << "|seed " << ctx.cfg.seed << opt_key(ctx);

  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(os.str())));
  return buf;
}

std::vector<std::string> flow_stage_keys(const FlowContext& ctx,
                                         const Pipeline& pipeline) {
  // Base: everything every stage implicitly depends on — the design itself,
  // the placement seed and the stack height. Stage key domains then fold in
  // the configuration surface each stage newly reads, forming a rolling
  // hash chain: keys[i] = H(stage_i domain, keys[i-1]).
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  write_design(os, ctx.netlist);
  os << "|tiers " << ctx.cfg.num_tiers << "|seed " << ctx.cfg.seed;
  std::uint64_t h = fnv1a64(os.str());

  std::vector<std::string> keys;
  keys.reserve(pipeline.stages().size());
  for (const Stage& s : pipeline.stages()) {
    const std::string domain =
        s.key_domain() ? s.key_domain()(ctx) : full_config_key(ctx);
    h = fnv1a64(s.name() + domain, h);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    keys.emplace_back(buf);
  }
  return keys;
}

RouterConfig calibrated_router(const Netlist& design, const Placement3D& ref,
                               int grid_n, double pctile) {
  const GCellGrid grid(ref.outline, grid_n, grid_n);
  return calibrate_capacity(design, ref, grid, {}, pctile);
}

}  // namespace dco3d
