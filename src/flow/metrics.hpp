#pragma once
// Stage metrics matching the Table III columns.

#include <string>

namespace dco3d {

struct StageMetrics {
  double overflow = 0.0;       // total routing overflow
  double ovf_gcell_pct = 0.0;  // % of GCells with overflow
  double h_overflow = 0.0;
  double v_overflow = 0.0;
  double wns_ps = 0.0;         // setup WNS (negative = violating)
  double tns_ps = 0.0;         // setup TNS
  double power_mw = 0.0;       // total power
  double wirelength_um = 0.0;  // routed WL

  std::string row(const std::string& label) const;
};

}  // namespace dco3d
