#include "flow/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <algorithm>
#include <cstdlib>

#include "flow/batch.hpp"
#include "netlist/generators.hpp"
#include "util/jsonl.hpp"
#include "util/parallel.hpp"

namespace dco3d {

namespace {

using util::JsonObject;
using util::JsonWriter;

double now_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

DesignKind parse_serve_kind(const std::string& k, Status& err) {
  if (k == "dma") return DesignKind::kDma;
  if (k == "aes") return DesignKind::kAes;
  if (k == "ecg") return DesignKind::kEcg;
  if (k == "ldpc") return DesignKind::kLdpc;
  if (k == "vga") return DesignKind::kVga;
  if (k == "rocket") return DesignKind::kRocket;
  if (k == "memlogic") return DesignKind::kMemLogic;
  if (k == "macroheavy") return DesignKind::kMacroHeavy;
  err = Status::invalid_argument(
      "unknown design kind '" + k +
      "' (valid kinds: dma, aes, ecg, ldpc, vga, rocket, memlogic, "
      "macroheavy)");
  return DesignKind::kDma;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kEarlyCommit: return "early_commit";
    case JobState::kFailed: return "failed";
    case JobState::kShed: return "shed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
  }
  return "unknown";
}

bool job_state_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

bool job_state_retriable(JobState s) {
  return s == JobState::kShed || s == JobState::kRejected;
}

// ---------------------------------------------------------------------------
// Job record. `state` and `cancel` are atomics so the scheduler and status
// snapshots never need the record mutex for the common polls; everything
// else (status, metrics, the streamed trace lines) is guarded by `mu`.

struct Server::Job {
  std::uint64_t num = 0;
  std::string id;
  ServeJobSpec spec;
  util::JsonObject request;  // raw submit request (custom-runner knobs)

  std::atomic<JobState> state{JobState::kQueued};
  std::atomic<bool> cancel{false};

  mutable std::mutex mu;
  std::condition_variable cv;       // trace lines appended / job finished
  std::vector<std::string> events;  // pre-rendered protocol event lines
  bool finished = false;

  Status status;
  std::string key;
  double wall_ms = 0.0;
  double retry_after_ms = 0.0;
  PipelineRunInfo info;
  double overflow = -1.0, wns_ps = 0.0, wirelength_um = 0.0;
  ServeRunOutcome outcome;  // custom-runner result (search jobs)
};

// ---------------------------------------------------------------------------
// Lifecycle.

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)),
      queue_(cfg_.queue_depth, cfg_.workers < 1 ? 1 : cfg_.workers) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (!cfg_.cache_dir.empty())
    cache_ = std::make_unique<ArtifactCache>(cfg_.cache_dir,
                                             cfg_.cache_budget_bytes);
}

Server::~Server() {
  if (!stopped_.load() && listener_.joinable()) request_drain();
  teardown();
}

void Server::start() {
  start_time_ = std::chrono::steady_clock::now();
  port_ = cfg_.port;
  listen_fd_ = util::listen_local(port_);
  int pipefd[2];
  if (::pipe(pipefd) != 0)
    throw StatusError(Status::io_error("serve: cannot create wake pipe"));
  wake_rd_.reset(pipefd[0]);
  wake_wr_.reset(pipefd[1]);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  listener_ = std::thread([this] { accept_loop(); });
}

void Server::request_drain() {
  if (!stopped_.load()) do_drain();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stopped_.load(); });
  }
  teardown();
}

void Server::teardown() {
  if (torn_down_.exchange(true)) return;
  // Wake and join the accept loop first so no new connections arrive.
  if (wake_wr_.valid()) {
    const char b = 1;
    (void)!::write(wake_wr_.get(), &b, 1);
  }
  if (listener_.joinable()) listener_.join();
  queue_.stop();  // normally already stopped by do_drain; idempotent
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  // Connection threads are detached but counted: kick any blocked read with
  // shutdown(), then wait for the count to hit zero.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::unique_lock<std::mutex> lock(conns_mu_);
  conns_cv_.wait(lock, [this] { return conn_count_ == 0; });
}

// ---------------------------------------------------------------------------
// Drain: stop admission, reject what was still queued (retriable), let the
// in-flight jobs finish or early-commit, then flip to stopped.

std::string Server::do_drain() {
  std::lock_guard<std::mutex> serialize(drain_mu_);
  if (!stopped_.load()) {
    draining_.store(true);
    const double hint = queue_.stats().service_ewma_ms;
    for (std::uint64_t num : queue_.drain()) {
      std::shared_ptr<Job> job = find_job_num(num);
      if (!job) continue;
      {
        std::lock_guard<std::mutex> lock(job->mu);
        job->retry_after_ms = hint;
      }
      finish_job(*job, JobState::kRejected,
                 Status::unavailable("server draining — resubmit elsewhere "
                                     "or after restart (retriable)"));
    }
    queue_.wait_idle();  // running jobs finish or early-commit
    queue_.stop();
    stopped_.store(true);
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
    }
    stop_cv_.notify_all();
    if (wake_wr_.valid()) {
      const char b = 1;
      (void)!::write(wake_wr_.get(), &b, 1);
    }
  }
  const ServerCounters c = counters();
  return JsonWriter()
      .field("ok", true)
      .field("event", "drained")
      .field("submitted", c.submitted)
      .field("completed", c.completed)
      .field("early_commits", c.early_commits)
      .field("failed", c.failed)
      .field("shed", c.shed)
      .field("cancelled", c.cancelled)
      .field("rejected", c.rejected)
      .done();
}

// ---------------------------------------------------------------------------
// Worker lanes. Each lane is an InlineLane: the flow's parallel kernels run
// inline on this thread (never re-entering the shared pool), so concurrent
// jobs stay bit-identical to serial runs — the same contract batch lanes use.

void Server::worker_loop() {
  util::InlineLane lane;
  std::uint64_t num = 0;
  while (queue_.pop(num)) {
    std::shared_ptr<Job> job = find_job_num(num);
    if (!job) {  // evicted from history somehow; nothing to run
      queue_.job_done(0.0);
      continue;
    }
    if (job->cancel.load()) {  // cancelled between admission and pop
      finish_job(*job, JobState::kCancelled,
                 Status::cancelled("cancelled while queued"));
      queue_.job_done(0.0);
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    run_job(*job);
    queue_.job_done(now_ms(t0));
  }
}

void Server::run_job(Job& job) {
  job.state.store(JobState::kRunning);
  const auto t0 = std::chrono::steady_clock::now();
  JobState final_state = JobState::kDone;
  Status final_status;
  try {
    // Custom job types (e.g. "search") dispatch to their registered runner;
    // it shares the job's deadline/cancel guards, the artifact cache, and
    // the event stream, and reports its outcome through ServeRunOutcome.
    if (job.spec.type != "flow") {
      const auto rit = cfg_.runners.find(job.spec.type);
      if (rit == cfg_.runners.end())
        throw StatusError(Status::invalid_argument(
            "no runner registered for job type '" + job.spec.type + "'"));
      const double budget = job.spec.deadline_ms > 0.0
                                ? job.spec.deadline_ms
                                : cfg_.default_deadline_ms;
      const Deadline deadline(budget);
      ServeRunContext rc{job.spec, job.request,
                         (cache_ && job.spec.use_cache) ? cache_.get()
                                                        : nullptr,
                         &deadline, &job.cancel,
                         [&job](const std::string& kind,
                                const std::string& inner) {
                           std::string line = JsonWriter()
                                                  .field("event", kind)
                                                  .field("job", job.id)
                                                  .raw("trace", inner)
                                                  .done();
                           {
                             std::lock_guard<std::mutex> lock(job.mu);
                             job.events.push_back(std::move(line));
                           }
                           job.cv.notify_all();
                         }};
      ServeRunOutcome outcome;
      const Status st = rit->second(rc, outcome);
      if (!st.ok()) throw StatusError(st);
      {
        std::lock_guard<std::mutex> lock(job.mu);
        job.outcome = outcome;
      }
      if (outcome.cancelled) {
        final_state = JobState::kCancelled;
        final_status = Status::cancelled(
            "cancelled while running — partial results committed");
      } else if (outcome.deadline_hit) {
        final_state = JobState::kEarlyCommit;
        final_status = Status::deadline_exceeded(
            "job deadline hit — partial results committed");
      }
      {
        std::lock_guard<std::mutex> lock(job.mu);
        job.wall_ms = now_ms(t0);
      }
      finish_job(job, final_state, final_status);
      return;
    }

    Status kind_err;
    const DesignKind kind = parse_serve_kind(job.spec.kind, kind_err);
    if (!kind_err.ok()) throw StatusError(kind_err);

    DesignSpec spec = spec_for(kind, job.spec.scale);
    spec.seed = job.spec.seed == 0 ? 1 : job.spec.seed;
    spec.clock_period_ps = job.spec.clock_ps;
    const Netlist design = generate_design(spec);

    FlowConfig cfg;
    cfg.grid_nx = cfg.grid_ny = job.spec.grid;
    cfg.num_tiers = job.spec.tiers;
    cfg.seed = spec.seed;
    const Placement3D ref = place_pseudo3d(design, cfg.place_params, cfg.seed,
                                           /*legalized=*/true, cfg.num_tiers);
    cfg.router = calibrated_router(design, ref, cfg.grid_nx, 0.70);

    FlowContext ctx = make_flow_context(design, cfg);
    ctx.design_name = spec.name;
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.key = flow_cache_key(ctx);
    }

    const double budget = job.spec.deadline_ms > 0.0
                              ? job.spec.deadline_ms
                              : cfg_.default_deadline_ms;
    const Deadline deadline(budget);
    PipelineOptions po;
    po.stop_after = job.spec.stop_after;
    if (cache_ && job.spec.use_cache) {
      po.cache = cache_.get();
      po.auto_resume = true;
    }
    po.deadline = &deadline;
    po.cancel = &job.cancel;
    po.info = &job.info;
    po.on_trace = [&job](const StageTraceEntry& e) {
      std::string line = JsonWriter()
                             .field("event", "stage")
                             .field("job", job.id)
                             .raw("trace", e.to_json())
                             .done();
      {
        std::lock_guard<std::mutex> lock(job.mu);
        job.events.push_back(std::move(line));
      }
      job.cv.notify_all();
    };

    const FlowResult res = pin3d_pipeline().run(ctx, po);

    const Pipeline& pipe = pin3d_pipeline();
    std::lock_guard<std::mutex> lock(job.mu);
    if (job.info.last_stage >= pipe.index_of("final-metrics")) {
      job.overflow = res.signoff.overflow;
      job.wns_ps = res.signoff.wns_ps;
      job.wirelength_um = res.signoff.wirelength_um;
    } else if (job.info.last_stage >= pipe.index_of("after-place-metrics")) {
      job.overflow = res.after_place.overflow;
      job.wns_ps = res.after_place.wns_ps;
      job.wirelength_um = res.after_place.wirelength_um;
    }
    if (job.info.cancelled) {
      final_state = JobState::kCancelled;
      final_status = Status::cancelled("cancelled while running — partial "
                                       "results committed");
    } else if (job.info.deadline_hit) {
      final_state = JobState::kEarlyCommit;
      final_status = Status::deadline_exceeded(
          "job deadline hit — partial results committed");
    }
  } catch (const StatusError& err) {
    // Isolation: the failure lands in this job record; the lane, the queue
    // and every other job keep running.
    final_state = JobState::kFailed;
    final_status = err.status();
  } catch (const std::exception& err) {
    final_state = JobState::kFailed;
    final_status = Status::internal(err.what());
  }
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.wall_ms = now_ms(t0);
  }
  finish_job(job, final_state, final_status);
}

void Server::finish_job(Job& job, JobState state, Status status) {
  // Counters and history first: by the time a waiting client sees the final
  // event (released by `finished` below), the server-wide counters already
  // reflect this job.
  update_counters(job, state);
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.status = std::move(status);
    job.finished = true;
  }
  job.state.store(state);
  job.cv.notify_all();
}

void Server::update_counters(Job& job, JobState state) {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  switch (state) {
    case JobState::kDone: ++counters_.completed; break;
    case JobState::kEarlyCommit: ++counters_.early_commits; break;
    case JobState::kFailed: ++counters_.failed; break;
    case JobState::kCancelled: ++counters_.cancelled; break;
    case JobState::kRejected: ++counters_.rejected; break;
    case JobState::kShed: ++counters_.shed; break;
    default: break;
  }
  finished_order_.push_back(job.num);
  while (finished_order_.size() > cfg_.history) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Job lookup / snapshots.

std::shared_ptr<Server::Job> Server::find_job_num(std::uint64_t num) const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  auto it = jobs_.find(num);
  return it == jobs_.end() ? nullptr : it->second;
}

std::shared_ptr<Server::Job> Server::find_job(const std::string& id) const {
  if (id.size() < 2 || id[0] != 'j') return nullptr;
  char* end = nullptr;
  const std::uint64_t num = std::strtoull(id.c_str() + 1, &end, 10);
  if (end == nullptr || *end != '\0') return nullptr;
  return find_job_num(num);
}

JobSnapshot Server::snapshot(const Job& job) const {
  JobSnapshot s;
  s.id = job.id;
  s.state = job.state.load();
  std::lock_guard<std::mutex> lock(job.mu);
  s.status = job.status;
  s.key = job.key;
  s.wall_ms = job.wall_ms;
  s.last_stage = job.info.last_stage;
  s.stages_run = job.info.stages_run;
  s.stages_cached = job.info.stages_cached;
  s.deadline_hit = job.info.deadline_hit;
  s.retry_after_ms = job.retry_after_ms;
  s.overflow = job.overflow;
  s.wns_ps = job.wns_ps;
  s.wirelength_um = job.wirelength_um;
  s.type = job.spec.type;
  s.outcome = job.outcome;
  return s;
}

JobSnapshot Server::job(const std::string& id) const {
  std::shared_ptr<Job> j = find_job(id);
  if (!j)
    throw StatusError(Status::not_found("serve: no such job '" + id + "'"));
  return snapshot(*j);
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return counters_;
}

JobQueueStats Server::queue_stats() const { return queue_.stats(); }

namespace {

void snapshot_fields(JsonWriter& w, const JobSnapshot& s) {
  w.field("job", s.id)
      .field("state", job_state_name(s.state))
      .field("retriable", job_state_retriable(s.state))
      .field("wall_ms", s.wall_ms)
      .field("last_stage", s.last_stage)
      .field("stages_run", s.stages_run)
      .field("stages_cached", s.stages_cached)
      .field("deadline_hit", s.deadline_hit);
  if (!s.key.empty()) w.field("key", s.key);
  if (!s.status.ok()) {
    w.field("status", status_code_name(s.status.code())).field("message", s.status.message());
  }
  if (s.retry_after_ms > 0.0) w.field("retry_after_ms", s.retry_after_ms);
  if (s.overflow >= 0.0) {
    w.field("overflow", s.overflow)
        .field("wns_ps", s.wns_ps)
        .field("wirelength_um", s.wirelength_um);
  }
  if (s.type != "flow") w.field("type", s.type);
  if (s.outcome.has_objective) {
    w.field("objective", s.outcome.objective)
        .field("rounds", s.outcome.rounds)
        .field("cheap_evals", s.outcome.cheap_evals)
        .field("full_evals", s.outcome.full_evals);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Protocol.

std::string Server::handle_submit(const JsonObject& req, int fd) {
  ServeJobSpec spec;
  spec.type = util::json_str(req, "type", spec.type);
  spec.kind = util::json_str(req, "kind", spec.kind);
  spec.scale = util::json_num(req, "scale", spec.scale);
  spec.grid = static_cast<int>(util::json_num(req, "grid", spec.grid));
  spec.tiers = static_cast<int>(util::json_num(req, "tiers", spec.tiers));
  spec.clock_ps = util::json_num(req, "clock_ps", spec.clock_ps);
  spec.seed = static_cast<std::uint64_t>(util::json_num(req, "seed", 1.0));
  spec.stop_after = util::json_str(req, "stop_after", "");
  spec.deadline_ms = util::json_num(req, "deadline_ms", 0.0);
  spec.priority = static_cast<int>(util::json_num(req, "priority", 0.0));
  spec.use_cache = util::json_bool(req, "cache", true);
  const bool wait = util::json_bool(req, "wait", false);

  // Validate what we can before admission so malformed submissions are
  // plain invalid_argument rejections, not shed/failed jobs.
  Status kind_err;
  parse_serve_kind(spec.kind, kind_err);
  if (spec.type != "flow" &&
      cfg_.runners.find(spec.type) == cfg_.runners.end())
    kind_err = Status::invalid_argument(
        "unknown job type '" + spec.type + "' (this server accepts: flow" +
        [this] {
          std::string s;
          for (const auto& [name, _] : cfg_.runners) s += ", " + name;
          return s;
        }() +
        ")");
  if (spec.grid < 4) kind_err = Status::invalid_argument("grid must be >= 4");
  if (spec.tiers < 2)
    kind_err = Status::invalid_argument("tiers must be >= 2");
  if (spec.scale <= 0.0)
    kind_err = Status::invalid_argument("scale must be > 0");
  if (!kind_err.ok()) {
    return JsonWriter()
        .field("ok", false)
        .field("status", status_code_name(kind_err.code()))
        .field("retriable", false)
        .field("message", kind_err.message())
        .done();
  }

  std::shared_ptr<Job> job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->request = req;  // custom runners read their extra knobs from it
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->num = next_job_++;
    job->id = "j" + std::to_string(job->num);
    jobs_.emplace(job->num, job);
    ++counters_.submitted;
  }

  const AdmissionDecision adm = queue_.submit(job->num, job->spec.priority);
  if (!adm.admitted) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->retry_after_ms = adm.retry_after_ms;
    }
    finish_job(*job, JobState::kShed, adm.status);
    return JsonWriter()
        .field("ok", false)
        .field("job", job->id)
        .field("state", "shed")
        .field("status", status_code_name(adm.status.code()))
        .field("retriable", true)
        .field("retry_after_ms", adm.retry_after_ms)
        .field("message", adm.status.message())
        .done();
  }

  const std::string ack = JsonWriter()
                              .field("ok", true)
                              .field("job", job->id)
                              .field("state", "queued")
                              .field("depth", std::uint64_t(adm.depth))
                              .done();
  if (!wait) return ack;
  if (!util::send_line(fd, ack)) return "";  // client gone; job continues
  stream_job(fd, *job);
  return "";  // stream_job sent everything, including the final event
}

void Server::stream_job(int fd, Job& job) {
  std::size_t sent = 0;
  for (;;) {
    std::vector<std::string> pending;
    bool finished = false;
    {
      std::unique_lock<std::mutex> lock(job.mu);
      job.cv.wait(lock, [&] { return job.events.size() > sent || job.finished; });
      pending.assign(job.events.begin() + static_cast<std::ptrdiff_t>(sent),
                     job.events.end());
      sent = job.events.size();
      finished = job.finished && job.events.size() == sent;
    }
    for (const std::string& line : pending)
      if (!util::send_line(fd, line)) return;  // client gone; job continues
    if (finished) break;
  }
  JsonWriter done;
  done.field("event", "done");
  snapshot_fields(done, snapshot(job));
  (void)util::send_line(fd, done.done());
}

std::string Server::handle_status(const JsonObject& req) const {
  const std::string id = util::json_str(req, "job", "");
  if (!id.empty()) {
    std::shared_ptr<Job> j = find_job(id);
    if (!j) {
      return JsonWriter()
          .field("ok", false)
          .field("status", "not_found")
          .field("message", "no such job '" + id + "'")
          .done();
    }
    JsonWriter w;
    w.field("ok", true);
    snapshot_fields(w, snapshot(*j));
    return w.done();
  }
  const ServerCounters c = counters();
  const JobQueueStats q = queue_.stats();
  JsonWriter w;
  w.field("ok", true)
      .field("protocol", kServeProtocol)
      .field("uptime_ms", now_ms(start_time_))
      .field("workers", cfg_.workers)
      .field("queue_depth", std::uint64_t(cfg_.queue_depth))
      .field("queued", std::uint64_t(q.depth))
      .field("in_flight", q.in_flight)
      .field("draining", draining_.load())
      .field("service_ewma_ms", q.service_ewma_ms)
      .field("submitted", c.submitted)
      .field("completed", c.completed)
      .field("early_commits", c.early_commits)
      .field("failed", c.failed)
      .field("shed", c.shed)
      .field("cancelled", c.cancelled)
      .field("rejected", c.rejected);
  if (cache_) {
    const ArtifactCacheStats cs = cache_->stats();
    w.field("cache_entries", std::uint64_t(cs.entries))
        .field("cache_bytes", cs.bytes)
        .field("cache_budget_bytes", cs.budget_bytes)
        .field("cache_evictions", cs.evictions)
        .field("cache_loads", cs.loads)
        .field("cache_misses", cs.misses)
        .field("cache_saves", cs.saves)
        .field("cache_tmp_swept", cs.tmp_swept);
  }
  return w.done();
}

std::string Server::handle_cancel(const JsonObject& req) {
  const std::string id = util::json_str(req, "job", "");
  std::shared_ptr<Job> job = find_job(id);
  if (!job) {
    return JsonWriter()
        .field("ok", false)
        .field("status", "not_found")
        .field("message", "no such job '" + id + "'")
        .done();
  }
  job->cancel.store(true);
  if (queue_.cancel(job->num)) {
    finish_job(*job, JobState::kCancelled,
               Status::cancelled("cancelled while queued"));
  }
  // Running jobs observe the flag at the next stage boundary and
  // early-commit; terminal jobs are unaffected.
  return JsonWriter()
      .field("ok", true)
      .field("job", job->id)
      .field("state", job_state_name(job->state.load()))
      .done();
}

// ---------------------------------------------------------------------------
// Accept / connection loops.

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_.get(), POLLIN, 0}, {wake_rd_.get(), POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // wake pipe: stopping
    if ((fds[0].revents & POLLIN) == 0) continue;
    util::Fd conn = util::accept_conn(listen_fd_.get());
    if (!conn.valid()) break;
    util::set_recv_timeout(conn.get(), cfg_.idle_timeout_ms);
    const int fd = conn.release();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_fds_.push_back(fd);
      ++conn_count_;
    }
    std::thread([this, fd] { conn_loop(fd); }).detach();
  }
}

void Server::conn_loop(int raw_fd) {
  util::LineReader reader(raw_fd);
  std::string line;
  bool closing = false;
  while (!closing && reader.read_line(line)) {
    if (line.empty()) continue;
    JsonObject req;
    std::string resp;
    const Status parsed = util::parse_json_object(line, req);
    if (!parsed.ok()) {
      resp = JsonWriter()
                 .field("ok", false)
                 .field("status", status_code_name(parsed.code()))
                 .field("message", parsed.message())
                 .done();
    } else {
      const std::string cmd = util::json_str(req, "cmd", "");
      if (cmd == "ping") {
        resp = JsonWriter()
                   .field("ok", true)
                   .field("protocol", kServeProtocol)
                   .field("port", port_)
                   .done();
      } else if (cmd == "submit") {
        if (stopped_.load() || draining_.load()) {
          resp = JsonWriter()
                     .field("ok", false)
                     .field("state", "shed")
                     .field("status", "unavailable")
                     .field("retriable", true)
                     .field("message", "server draining (retriable)")
                     .done();
        } else {
          resp = handle_submit(req, raw_fd);  // empty when it streamed
        }
      } else if (cmd == "status") {
        resp = handle_status(req);
      } else if (cmd == "cancel") {
        resp = handle_cancel(req);
      } else if (cmd == "drain") {
        resp = do_drain();
        closing = true;
      } else {
        resp = JsonWriter()
                   .field("ok", false)
                   .field("status", "invalid_argument")
                   .field("message", "unknown cmd '" + cmd + "'")
                   .done();
      }
    }
    if (!resp.empty() && !util::send_line(raw_fd, resp)) break;
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  ::close(raw_fd);
  conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), raw_fd));
  --conn_count_;
  conns_cv_.notify_all();
}

}  // namespace dco3d
