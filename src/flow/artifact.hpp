#pragma once
// Artifact persistence for the stage-graph flow engine: the complete mutable
// FlowContext state (working netlist, placement, skew, route result, and the
// partially-filled FlowResult) serialized at a stage boundary so a later run
// can resume from it with bit-identical results.
//
// Layout: one directory per stage boundary holding plain-text files in the
// repo's existing interchange formats —
//   state.txt        versioned header, grid, skew, metrics, cts/signoff detail
//   netlist.design   working netlist (design_io format; includes CTS buffers)
//   placement.place  current placement
//   global.place     FlowResult::global_placement (present once dco ran)
//   final.place      FlowResult::placement       (present once final-metrics ran)
//   route.txt        RouteResult of the route stage (present once route ran)
//   final_route.txt  FlowResult::final_route      (present once final-metrics ran)
//
// All floating-point values are written with max_digits10 so text
// round-trips are bit-exact (the resume-equivalence test depends on it).
// Saves are crash-safe: files stream into `<dir>.tmp` which is then renamed
// over the target directory (the PR-1 tmp+rename pattern, lifted from file
// to directory granularity).

#include <cstdint>
#include <string>

#include "flow/stage.hpp"

namespace dco3d {

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(const std::string& data,
                      std::uint64_t seed = 1469598103934665603ull);

/// Persist the context's full mutable state into `dir` (created, tmp+rename
/// atomic). Throws StatusError kIoError on filesystem failure.
void save_flow_artifact(const std::string& dir, const FlowContext& ctx);

/// Restore state saved by save_flow_artifact into `ctx` (cfg/optimizer are
/// left untouched — the caller re-supplies them, and the cache key already
/// guarantees they match). Returns false when `dir` does not exist; throws
/// StatusError kDataLoss on a corrupt artifact.
bool load_flow_artifact(const std::string& dir, FlowContext& ctx);

}  // namespace dco3d
