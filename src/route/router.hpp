#pragma once
// Global router over the per-die GCell grids — our substitute for ICC2's
// global route and its congestion report. Supplies:
//   * ground-truth congestion label maps for training (§III-B2),
//   * the overflow / H-V overflow / overflowed-GCell% columns of Table III,
//   * routed wirelength for the WL column.
//
// Model: each of the K stacked dies has horizontal and vertical edge
// capacities between adjacent GCells (reduced under macros). Nets are
// decomposed into 2-pin segments by a rectilinear Prim MST; nets spanning
// multiple tiers get a via GCell at the pin median that becomes a terminal
// on every tier in the net's span — a via stack of (max tier - min tier)
// hops. Initial routing uses best-of-two L-shapes; negotiated
// rip-up-and-reroute (history-cost Dijkstra) then resolves overflow for a
// configurable number of rounds — exactly the classical NCTU/NTHU-style
// global routing loop.

#include <cstdint>
#include <vector>

#include "grid/gcell_grid.hpp"
#include "netlist/netlist.hpp"

namespace dco3d {

struct RouterConfig {
  // Tracks per GCell boundary, per direction. Calibrated so typical
  // placements route with localized hotspots (as in the paper's maps).
  double h_capacity = 14.0;
  double v_capacity = 12.0;
  double macro_capacity_factor = 0.15;  // capacity left under macros
  int rrr_rounds = 3;
  double history_increment = 1.0;
  double present_penalty = 2.0;  // cost multiplier per unit of overuse
  int maze_margin = 6;           // extra tiles around the net bbox for maze search
};

/// Per-die edge capacity/usage state for a K-tier stack.
class RouteGrid {
 public:
  RouteGrid(const GCellGrid& grid, const RouterConfig& cfg, int num_tiers = 2);

  const GCellGrid& gcells() const { return grid_; }
  int nx() const { return grid_.nx(); }
  int ny() const { return grid_.ny(); }
  int num_tiers() const { return num_tiers_; }

  std::size_t h_edge_index(int m, int n) const {  // (m,n) -> (m+1,n)
    return static_cast<std::size_t>(n) * (nx() - 1) + m;
  }
  std::size_t v_edge_index(int m, int n) const {  // (m,n) -> (m,n+1)
    return static_cast<std::size_t>(n) * nx() + m;
  }
  std::size_t num_h_edges() const {
    return static_cast<std::size_t>(nx() - 1) * ny();
  }
  std::size_t num_v_edges() const {
    return static_cast<std::size_t>(nx()) * (ny() - 1);
  }

  /// Reduce capacity under macro blockages on each die.
  void apply_macro_blockages(const Netlist& netlist, const Placement3D& placement);

  // Indexed [tier][edge].
  std::vector<std::vector<double>> h_cap, v_cap;
  std::vector<std::vector<double>> h_use, v_use;
  std::vector<std::vector<double>> h_hist, v_hist;

 private:
  GCellGrid grid_;
  int num_tiers_ = 2;
  double macro_factor_ = 0.15;
};

/// One routed edge of a net (for rip-up).
struct RoutedEdge {
  std::int8_t die = 0;
  bool horizontal = false;
  std::int32_t index = 0;
};

struct RouteResult {
  int num_tiers = 2;
  // Per-die congestion label map (tile overflow), size ny*nx.
  std::vector<std::vector<float>> congestion;
  // Per-die density-style usage map (total edge usage per tile), for Fig. 6.
  std::vector<std::vector<float>> usage;
  double total_overflow = 0.0;
  double h_overflow = 0.0;
  double v_overflow = 0.0;
  // Per-tier total overflow (h + v on that die); sums to total_overflow.
  std::vector<double> tier_overflow;
  // Per-tier-boundary via-stack crossings: entry b counts nets whose span
  // covers the boundary between tier b and b+1 (size num_tiers - 1).
  std::vector<std::size_t> vias_per_boundary;
  double ovf_gcell_pct = 0.0;  // % of GCells (all dies) with overflow
  double wirelength = 0.0;     // routed WL in um (includes via penalty)
  std::size_t num_3d_vias = 0; // total boundary crossings over all nets
  // Per-net routed wirelength (um): feeds the detour factors that couple
  // congestion into signoff timing/power.
  std::vector<double> net_routed_wl;
  // Per-net count of overflowed edges used (ECO-detour severity signal).
  std::vector<double> net_overflow_crossings;
};

/// Route all nets of the design and return congestion metrics. The tier
/// count is taken from the placement.
RouteResult global_route(const Netlist& netlist, const Placement3D& placement,
                         const GCellGrid& grid, const RouterConfig& cfg = {});

/// Capacity auto-calibration. Our designs are scale models (see DESIGN.md),
/// so absolute track counts do not transfer across scales; instead, route a
/// reference placement with unbounded capacity and set per-direction
/// capacities at the `percentile` of the observed nonzero edge usage. Edges
/// hotter than that percentile overflow, reproducing the "mostly routable
/// with localized hotspots" regime of the paper's designs. The returned
/// config must be reused for every flow variant of the same design so that
/// comparisons share one capacity model.
RouterConfig calibrate_capacity(const Netlist& netlist,
                                const Placement3D& placement,
                                const GCellGrid& grid,
                                const RouterConfig& base = {},
                                double percentile = 0.90);

}  // namespace dco3d
