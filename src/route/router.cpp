#include "route/router.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace dco3d {

RouteGrid::RouteGrid(const GCellGrid& grid, const RouterConfig& cfg,
                     int num_tiers)
    : grid_(grid),
      num_tiers_(num_tiers),
      macro_factor_(cfg.macro_capacity_factor) {
  const auto k = static_cast<std::size_t>(num_tiers_);
  h_cap.assign(k, std::vector<double>(num_h_edges(), cfg.h_capacity));
  v_cap.assign(k, std::vector<double>(num_v_edges(), cfg.v_capacity));
  h_use.assign(k, std::vector<double>(num_h_edges(), 0.0));
  v_use.assign(k, std::vector<double>(num_v_edges(), 0.0));
  h_hist.assign(k, std::vector<double>(num_h_edges(), 0.0));
  v_hist.assign(k, std::vector<double>(num_v_edges(), 0.0));
}

void RouteGrid::apply_macro_blockages(const Netlist& netlist,
                                      const Placement3D& placement) {
  const double f = macro_factor_;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_macro(id)) continue;
    const CellType& t = netlist.cell_type(id);
    const Rect m{placement.xy[ci].x, placement.xy[ci].y,
                 placement.xy[ci].x + t.width, placement.xy[ci].y + t.height};
    const int die = std::clamp(placement.tier[ci], 0, num_tiers_ - 1);
    const int m0 = grid_.col_of(m.xlo), m1 = grid_.col_of(m.xhi);
    const int n0 = grid_.row_of(m.ylo), n1 = grid_.row_of(m.yhi);
    // Any edge whose either endpoint tile is covered by the macro loses
    // capacity (the macro body blocks most routing layers).
    for (int n = n0; n <= n1; ++n) {
      for (int mm = m0; mm <= m1; ++mm) {
        const Rect tr = grid_.tile_rect(mm, n);
        if (tr.overlap_area(m) < 0.5 * tr.area()) continue;
        if (mm > 0) h_cap[die][h_edge_index(mm - 1, n)] *= f;
        if (mm < nx() - 1) h_cap[die][h_edge_index(mm, n)] *= f;
        if (n > 0) v_cap[die][v_edge_index(mm, n - 1)] *= f;
        if (n < ny() - 1) v_cap[die][v_edge_index(mm, n)] *= f;
      }
    }
  }
}

namespace {

struct TilePt {
  int m = 0, n = 0;
};

/// Per-net routing record for rip-up.
struct NetRoute {
  std::vector<RoutedEdge> edges;
};

struct Ctx {
  const RouterConfig& cfg;
  RouteGrid& rg;

  double edge_cost(int die, bool horizontal, std::size_t idx) const {
    const double cap = horizontal ? rg.h_cap[die][idx] : rg.v_cap[die][idx];
    const double use = horizontal ? rg.h_use[die][idx] : rg.v_use[die][idx];
    const double hist = horizontal ? rg.h_hist[die][idx] : rg.v_hist[die][idx];
    double c = 1.0 + hist;
    if (use >= cap) c += cfg.present_penalty * (use - cap + 1.0);
    return c;
  }

  void add_edge(NetRoute& route, int die, bool horizontal, std::size_t idx) {
    auto& use = horizontal ? rg.h_use[die] : rg.v_use[die];
    use[idx] += 1.0;
    route.edges.push_back({static_cast<std::int8_t>(die), horizontal,
                           static_cast<std::int32_t>(idx)});
  }

  /// Straight horizontal run from (m0,n) to (m1,n).
  void run_h(NetRoute& route, int die, int m0, int m1, int n) {
    for (int m = std::min(m0, m1); m < std::max(m0, m1); ++m)
      add_edge(route, die, true, rg.h_edge_index(m, n));
  }
  void run_v(NetRoute& route, int die, int n0, int n1, int m) {
    for (int n = std::min(n0, n1); n < std::max(n0, n1); ++n)
      add_edge(route, die, false, rg.v_edge_index(m, n));
  }

  double cost_h(int die, int m0, int m1, int n) const {
    double c = 0.0;
    for (int m = std::min(m0, m1); m < std::max(m0, m1); ++m)
      c += edge_cost(die, true, rg.h_edge_index(m, n));
    return c;
  }
  double cost_v(int die, int n0, int n1, int m) const {
    double c = 0.0;
    for (int n = std::min(n0, n1); n < std::max(n0, n1); ++n)
      c += edge_cost(die, false, rg.v_edge_index(m, n));
    return c;
  }

  /// Best-of-two L-shape route between tiles.
  void route_l(NetRoute& route, int die, TilePt a, TilePt b) {
    // L1: horizontal first (at a.n), then vertical (at b.m).
    const double c1 = cost_h(die, a.m, b.m, a.n) + cost_v(die, a.n, b.n, b.m);
    // L2: vertical first (at a.m), then horizontal (at b.n).
    const double c2 = cost_v(die, a.n, b.n, a.m) + cost_h(die, a.m, b.m, b.n);
    if (c1 <= c2) {
      run_h(route, die, a.m, b.m, a.n);
      run_v(route, die, a.n, b.n, b.m);
    } else {
      run_v(route, die, a.n, b.n, a.m);
      run_h(route, die, a.m, b.m, b.n);
    }
  }

  /// Dijkstra maze route within the bbox of (a, b) + margin.
  void route_maze(NetRoute& route, int die, TilePt a, TilePt b) {
    const int nx = rg.nx(), ny = rg.ny();
    const int m0 = std::max(0, std::min(a.m, b.m) - cfg.maze_margin);
    const int m1 = std::min(nx - 1, std::max(a.m, b.m) + cfg.maze_margin);
    const int n0 = std::max(0, std::min(a.n, b.n) - cfg.maze_margin);
    const int n1 = std::min(ny - 1, std::max(a.n, b.n) + cfg.maze_margin);
    const int w = m1 - m0 + 1, h = n1 - n0 + 1;
    auto lid = [&](int m, int n) { return (n - n0) * w + (m - m0); };

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(static_cast<std::size_t>(w) * h, kInf);
    std::vector<std::int32_t> prev(static_cast<std::size_t>(w) * h, -1);
    using QE = std::pair<double, std::int32_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> q;
    dist[static_cast<std::size_t>(lid(a.m, a.n))] = 0.0;
    q.push({0.0, lid(a.m, a.n)});
    const std::int32_t target = lid(b.m, b.n);

    while (!q.empty()) {
      auto [d, u] = q.top();
      q.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      if (u == target) break;
      const int um = m0 + (u % w), un = n0 + (u / w);
      auto relax = [&](int vm, int vn, double ec) {
        const std::int32_t v = lid(vm, vn);
        if (d + ec < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = d + ec;
          prev[static_cast<std::size_t>(v)] = u;
          q.push({d + ec, v});
        }
      };
      if (um > m0) relax(um - 1, un, edge_cost(die, true, rg.h_edge_index(um - 1, un)));
      if (um < m1) relax(um + 1, un, edge_cost(die, true, rg.h_edge_index(um, un)));
      if (un > n0) relax(um, un - 1, edge_cost(die, false, rg.v_edge_index(um, un - 1)));
      if (un < n1) relax(um, un + 1, edge_cost(die, false, rg.v_edge_index(um, un)));
    }

    if (prev[static_cast<std::size_t>(target)] < 0 && target != lid(a.m, a.n)) {
      // Unreachable within the window (should not happen on a full grid);
      // fall back to an L route.
      route_l(route, die, a, b);
      return;
    }
    // Walk back and commit edges.
    std::int32_t v = target;
    while (v != lid(a.m, a.n)) {
      const std::int32_t u = prev[static_cast<std::size_t>(v)];
      const int um = m0 + (u % w), un = n0 + (u / w);
      const int vm = m0 + (v % w), vn = n0 + (v / w);
      if (un == vn)
        add_edge(route, die, true, rg.h_edge_index(std::min(um, vm), un));
      else
        add_edge(route, die, false, rg.v_edge_index(um, std::min(un, vn)));
      v = u;
    }
  }
};

/// Prim MST over tile points (Manhattan metric). Returns parent indices.
std::vector<int> prim_mst(const std::vector<TilePt>& pts) {
  const std::size_t n = pts.size();
  std::vector<int> parent(n, -1);
  if (n <= 1) return parent;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<int> best_from(n, 0);
  in_tree[0] = true;
  for (std::size_t i = 1; i < n; ++i) {
    best[i] = std::abs(pts[i].m - pts[0].m) + std::abs(pts[i].n - pts[0].n);
    best_from[i] = 0;
  }
  for (std::size_t it = 1; it < n; ++it) {
    double mind = std::numeric_limits<double>::infinity();
    std::size_t pick = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!in_tree[i] && best[i] < mind) {
        mind = best[i];
        pick = i;
      }
    in_tree[pick] = true;
    parent[pick] = best_from[pick];
    for (std::size_t i = 0; i < n; ++i) {
      if (in_tree[i]) continue;
      const double d = std::abs(pts[i].m - pts[pick].m) +
                       std::abs(pts[i].n - pts[pick].n);
      if (d < best[i]) {
        best[i] = d;
        best_from[i] = static_cast<int>(pick);
      }
    }
  }
  return parent;
}

/// 2-pin segments (per die) of one net, including the 3D via tile if needed.
struct NetPlan {
  // Per tier: list of tile points; MST segments are rebuilt at (re)route time.
  std::vector<std::vector<TilePt>> pts;
  // Tier span of the net's pins: the via stack crosses [tier_lo, tier_hi).
  int tier_lo = 0, tier_hi = 0;
  bool is3d = false;

  int span() const { return tier_hi - tier_lo; }
};

NetPlan plan_net(const Netlist& netlist, NetId net, const Placement3D& placement,
                 const GCellGrid& grid, int num_tiers) {
  NetPlan plan;
  plan.pts.assign(static_cast<std::size_t>(num_tiers), {});
  std::vector<Point> all;
  int lo = num_tiers, hi = -1;
  // Stored pin order is driver-first — the legacy terminal order, which the
  // MST construction below is sensitive to.
  for (const Pin& p : netlist.net_pins(net)) {
    const Point pos = placement.pin_position(p);
    const int die = std::clamp(
        placement.tier[static_cast<std::size_t>(p.cell)], 0, num_tiers - 1);
    plan.pts[static_cast<std::size_t>(die)].push_back(
        {grid.col_of(pos.x), grid.row_of(pos.y)});
    lo = std::min(lo, die);
    hi = std::max(hi, die);
    all.push_back(pos);
  }
  plan.tier_lo = lo;
  plan.tier_hi = hi;
  plan.is3d = hi > lo;
  if (plan.is3d) {
    // Via GCell at the median of all pins; becomes a terminal on every tier
    // of the net's span so the via stack can pass through intermediate dies.
    std::vector<double> xs, ys;
    for (const Point& p : all) {
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
    std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
    std::nth_element(ys.begin(), ys.begin() + ys.size() / 2, ys.end());
    const TilePt via{grid.col_of(xs[xs.size() / 2]), grid.row_of(ys[ys.size() / 2])};
    for (int t = lo; t <= hi; ++t)
      plan.pts[static_cast<std::size_t>(t)].push_back(via);
  }
  return plan;
}

void route_net(Ctx& ctx, const NetPlan& plan, NetRoute& route, bool maze) {
  for (int die = 0; die < static_cast<int>(plan.pts.size()); ++die) {
    const auto& pts = plan.pts[static_cast<std::size_t>(die)];
    if (pts.size() < 2) continue;
    const std::vector<int> parent = prim_mst(pts);
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const TilePt a = pts[static_cast<std::size_t>(parent[i])];
      const TilePt b = pts[i];
      if (a.m == b.m && a.n == b.n) continue;
      if (maze)
        ctx.route_maze(route, die, a, b);
      else
        ctx.route_l(route, die, a, b);
    }
  }
}

void rip_up(Ctx& ctx, NetRoute& route) {
  for (const RoutedEdge& e : route.edges) {
    auto& use = e.horizontal ? ctx.rg.h_use[e.die] : ctx.rg.v_use[e.die];
    use[static_cast<std::size_t>(e.index)] -= 1.0;
  }
  route.edges.clear();
}

}  // namespace

RouteResult global_route(const Netlist& netlist, const Placement3D& placement,
                         const GCellGrid& grid, const RouterConfig& cfg) {
  const int num_tiers = placement.num_tiers;
  RouteGrid rg(grid, cfg, num_tiers);
  rg.apply_macro_blockages(netlist, placement);
  Ctx ctx{cfg, rg};

  const std::size_t n_nets = netlist.num_nets();
  std::vector<NetPlan> plans(n_nets);
  std::vector<NetRoute> routes(n_nets);
  std::size_t vias = 0;
  std::vector<std::size_t> vias_per_boundary(
      static_cast<std::size_t>(std::max(num_tiers - 1, 0)), 0);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    plans[ni] =
        plan_net(netlist, static_cast<NetId>(ni), placement, grid, num_tiers);
    if (plans[ni].is3d) {
      vias += static_cast<std::size_t>(plans[ni].span());
      for (int b = plans[ni].tier_lo; b < plans[ni].tier_hi; ++b)
        ++vias_per_boundary[static_cast<std::size_t>(b)];
    }
    route_net(ctx, plans[ni], routes[ni], /*maze=*/false);
  }

  // Negotiated rip-up and reroute.
  for (int round = 0; round < cfg.rrr_rounds; ++round) {
    // Bump history on overflowed edges.
    bool any_overflow = false;
    for (int die = 0; die < num_tiers; ++die) {
      for (std::size_t i = 0; i < rg.num_h_edges(); ++i)
        if (rg.h_use[die][i] > rg.h_cap[die][i]) {
          rg.h_hist[die][i] += cfg.history_increment;
          any_overflow = true;
        }
      for (std::size_t i = 0; i < rg.num_v_edges(); ++i)
        if (rg.v_use[die][i] > rg.v_cap[die][i]) {
          rg.v_hist[die][i] += cfg.history_increment;
          any_overflow = true;
        }
    }
    if (!any_overflow) break;

    for (std::size_t ni = 0; ni < n_nets; ++ni) {
      bool over = false;
      for (const RoutedEdge& e : routes[ni].edges) {
        const auto idx = static_cast<std::size_t>(e.index);
        const double use = e.horizontal ? rg.h_use[e.die][idx] : rg.v_use[e.die][idx];
        const double cap = e.horizontal ? rg.h_cap[e.die][idx] : rg.v_cap[e.die][idx];
        if (use > cap) {
          over = true;
          break;
        }
      }
      if (!over) continue;
      rip_up(ctx, routes[ni]);
      route_net(ctx, plans[ni], routes[ni], /*maze=*/true);
    }
  }

  // Collect metrics.
  RouteResult res;
  res.num_tiers = num_tiers;
  const std::int64_t tiles = grid.num_tiles();
  res.congestion.assign(static_cast<std::size_t>(num_tiers),
                        std::vector<float>(static_cast<std::size_t>(tiles), 0.0f));
  res.usage.assign(static_cast<std::size_t>(num_tiers),
                   std::vector<float>(static_cast<std::size_t>(tiles), 0.0f));
  res.tier_overflow.assign(static_cast<std::size_t>(num_tiers), 0.0);
  std::size_t ovf_tiles = 0;
  for (int die = 0; die < num_tiers; ++die) {
    for (int n = 0; n < grid.ny(); ++n) {
      for (int m = 0; m < grid.nx(); ++m) {
        double tile_ovf = 0.0, tile_use = 0.0;
        auto edge = [&](bool horizontal, int mm, int nn) {
          if (horizontal) {
            if (mm < 0 || mm >= grid.nx() - 1) return;
            const std::size_t i = rg.h_edge_index(mm, nn);
            tile_use += rg.h_use[die][i] * 0.5;
            tile_ovf += std::max(rg.h_use[die][i] - rg.h_cap[die][i], 0.0) * 0.5;
          } else {
            if (nn < 0 || nn >= grid.ny() - 1) return;
            const std::size_t i = rg.v_edge_index(mm, nn);
            tile_use += rg.v_use[die][i] * 0.5;
            tile_ovf += std::max(rg.v_use[die][i] - rg.v_cap[die][i], 0.0) * 0.5;
          }
        };
        edge(true, m - 1, n);
        edge(true, m, n);
        edge(false, m, n - 1);
        edge(false, m, n);
        const auto ti = static_cast<std::size_t>(grid.index(m, n));
        res.congestion[die][ti] = static_cast<float>(tile_ovf);
        res.usage[die][ti] = static_cast<float>(tile_use);
        if (tile_ovf > 0.0) ++ovf_tiles;
      }
    }
    for (std::size_t i = 0; i < rg.num_h_edges(); ++i)
      res.h_overflow += std::max(rg.h_use[die][i] - rg.h_cap[die][i], 0.0);
    for (std::size_t i = 0; i < rg.num_v_edges(); ++i)
      res.v_overflow += std::max(rg.v_use[die][i] - rg.v_cap[die][i], 0.0);
    // Per-tier overflow, accumulated separately so the legacy h/v overflow
    // summation order above is untouched.
    double tovf = 0.0;
    for (std::size_t i = 0; i < rg.num_h_edges(); ++i)
      tovf += std::max(rg.h_use[die][i] - rg.h_cap[die][i], 0.0);
    for (std::size_t i = 0; i < rg.num_v_edges(); ++i)
      tovf += std::max(rg.v_use[die][i] - rg.v_cap[die][i], 0.0);
    res.tier_overflow[static_cast<std::size_t>(die)] = tovf;
  }
  res.total_overflow = res.h_overflow + res.v_overflow;
  res.ovf_gcell_pct = 100.0 * static_cast<double>(ovf_tiles) /
                      static_cast<double>(num_tiers * tiles);
  res.num_3d_vias = vias;
  res.vias_per_boundary = std::move(vias_per_boundary);

  // Routed wirelength: edge count times tile pitch, plus a via penalty per
  // boundary crossing.
  double wl = 0.0;
  for (int die = 0; die < num_tiers; ++die) {
    for (double u : rg.h_use[die]) wl += u * grid.tile_width();
    for (double u : rg.v_use[die]) wl += u * grid.tile_height();
  }
  res.wirelength = wl + static_cast<double>(vias) * 0.5 * grid.tile_width();

  // Per-net routed length and overflow exposure.
  res.net_routed_wl.assign(n_nets, 0.0);
  res.net_overflow_crossings.assign(n_nets, 0.0);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    for (const RoutedEdge& e : routes[ni].edges) {
      const auto idx = static_cast<std::size_t>(e.index);
      res.net_routed_wl[ni] += e.horizontal ? grid.tile_width() : grid.tile_height();
      const double use = e.horizontal ? rg.h_use[e.die][idx] : rg.v_use[e.die][idx];
      const double cap = e.horizontal ? rg.h_cap[e.die][idx] : rg.v_cap[e.die][idx];
      if (use > cap) res.net_overflow_crossings[ni] += 1.0;
    }
    if (plans[ni].is3d)
      res.net_routed_wl[ni] +=
          static_cast<double>(plans[ni].span()) * 0.5 * grid.tile_width();
  }
  return res;
}



namespace {
double usage_percentile(std::vector<double> values, double percentile) {
  std::erase_if(values, [](double v) { return v <= 0.0; });
  if (values.empty()) return 1.0;
  const auto k = static_cast<std::size_t>(
      percentile * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return values[k];
}
}  // namespace

RouterConfig calibrate_capacity(const Netlist& netlist,
                                const Placement3D& placement,
                                const GCellGrid& grid, const RouterConfig& base,
                                double percentile) {
  RouterConfig probe = base;
  probe.h_capacity = 1e9;
  probe.v_capacity = 1e9;
  probe.rrr_rounds = 0;

  const int num_tiers = placement.num_tiers;
  RouteGrid rg(grid, probe, num_tiers);
  Ctx ctx{probe, rg};
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    NetPlan plan =
        plan_net(netlist, static_cast<NetId>(ni), placement, grid, num_tiers);
    NetRoute route;
    route_net(ctx, plan, route, /*maze=*/false);
  }

  std::vector<double> h_all, v_all;
  for (int die = 0; die < num_tiers; ++die) {
    h_all.insert(h_all.end(), rg.h_use[die].begin(), rg.h_use[die].end());
    v_all.insert(v_all.end(), rg.v_use[die].begin(), rg.v_use[die].end());
  }
  RouterConfig out = base;
  out.h_capacity = std::max(2.0, std::ceil(usage_percentile(h_all, percentile)));
  out.v_capacity = std::max(2.0, std::ceil(usage_percentile(v_all, percentile)));
  return out;
}

}  // namespace dco3d
