#pragma once
// The shared evaluation contract between the knob searcher (src/search) and
// the flow engine (src/flow). An Evaluator maps a PlacementParams point to a
// scalar objective at one of two fidelities:
//
//   * kCheap — the flow runs only through the congestion-prediction stage
//     ("after-place-metrics" by default, i.e. place3d → dco → legalized
//     congestion/timing estimate), the view the trained predictor scores;
//   * kFull  — the whole Pin-3D pipeline through signoff/final-metrics.
//
// Both fidelities return a common EvalResult carrying the objective, the
// fidelity tag, stage provenance (how deep the flow ran, how much came from
// the artifact cache) and the run status, so the searcher can screen with
// cheap evaluations and promote only the top fraction to full flows
// (docs/search.md).

#include <atomic>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/guard.hpp"
#include "flow/pin3d.hpp"
#include "netlist/netlist.hpp"
#include "place/params.hpp"
#include "util/status.hpp"

namespace dco3d {

class ArtifactCache;

enum class Fidelity { kCheap, kFull };

/// "cheap" / "full" — the tags used in search trace records.
const char* fidelity_name(Fidelity f);

/// What one evaluation produced. A failed or early-committed run reports a
/// non-OK status and an infinite objective; the searcher excludes it from
/// the surrogate's observations.
struct EvalResult {
  double objective = std::numeric_limits<double>::infinity();
  Fidelity fidelity = Fidelity::kFull;
  Status status;            // OK, or why the evaluation is unusable
  std::string stop_stage;   // deepest pipeline stage satisfied (provenance)
  int stages_run = 0;       // stage bodies executed
  int stages_cached = 0;    // stages replayed from the artifact cache
  double wall_ms = 0.0;
};

/// Abstract evaluation backend. evaluate_many is the batched entry point the
/// searcher uses for each round; the default runs the points sequentially
/// (safe for arbitrary callables), FlowEvaluator overrides it to run them
/// concurrently through the batch runner's pool lanes.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual EvalResult evaluate(const PlacementParams& params,
                              Fidelity fidelity) = 0;

  virtual std::vector<EvalResult> evaluate_many(
      const std::vector<PlacementParams>& points, Fidelity fidelity);

  /// Whether kCheap is a distinct (cheaper) fidelity here. When false the
  /// searcher silently disables cheap-fidelity screening.
  virtual bool supports_cheap() const { return false; }
};

/// Wraps plain objective callables — the compatibility shim that lets the
/// legacy bayes_optimize API and synthetic-objective tests run through the
/// searcher. Evaluations are sequential (the callable may not be
/// thread-safe) and report no stage provenance.
class FunctionEvaluator : public Evaluator {
 public:
  explicit FunctionEvaluator(
      std::function<double(const PlacementParams&)> full,
      std::function<double(const PlacementParams&)> cheap = nullptr)
      : full_(std::move(full)), cheap_(std::move(cheap)) {}

  EvalResult evaluate(const PlacementParams& params,
                      Fidelity fidelity) override;
  bool supports_cheap() const override { return cheap_ != nullptr; }

 private:
  std::function<double(const PlacementParams&)> full_;
  std::function<double(const PlacementParams&)> cheap_;
};

struct FlowEvaluatorConfig {
  // Stage the cheap fidelity stops after. Must be at or beyond
  // "after-place-metrics" (the objective is read from that stage's result).
  std::string cheap_stop = "after-place-metrics";
  // Shared artifact cache: evaluations persist per-stage artifacts under
  // prefix keys, so a cheap evaluation promoted to full replays its cheap
  // stages nearly free (flow_stage_keys in flow/stage.hpp).
  ArtifactCache* cache = nullptr;
  const Deadline* deadline = nullptr;          // per-evaluation guard
  const std::atomic<bool>* cancel = nullptr;   // cooperative cancellation
  PlacementOptimizer optimizer;                // optional DCO hook
  std::string optimizer_tag = "none";
};

/// The real evaluator: pushes candidates through the Pin-3D stage pipeline
/// via the batch runner (one pool lane per candidate — design-level
/// concurrency, bit-identical per-candidate results). The objective is
/// congestion-first: overflow + max(0, -wns_ps), read from the
/// after-place-metrics stage (cheap) or signoff (full), so both fidelities
/// rank candidates on the same functional.
class FlowEvaluator : public Evaluator {
 public:
  FlowEvaluator(std::string design_name, Netlist design, FlowConfig base,
                FlowEvaluatorConfig cfg = {});

  EvalResult evaluate(const PlacementParams& params,
                      Fidelity fidelity) override;
  std::vector<EvalResult> evaluate_many(
      const std::vector<PlacementParams>& points, Fidelity fidelity) override;
  bool supports_cheap() const override { return true; }

  const std::string& design_name() const { return design_name_; }

 private:
  std::string design_name_;
  Netlist design_;
  FlowConfig base_;
  FlowEvaluatorConfig cfg_;
};

/// The searcher's scalar objective over stage metrics: routing overflow plus
/// the magnitude of any setup violation (ps). Exposed for tests and for the
/// sequential-baseline comparison in bench_report.
double search_objective(const StageMetrics& m);

}  // namespace dco3d
