#include "search/serve_search.hpp"

#include <algorithm>
#include <cmath>

#include "place/placer3d.hpp"
#include "search/evaluator.hpp"
#include "search/searcher.hpp"
#include "util/rng.hpp"

namespace dco3d {

ServeJobRunner make_search_job_runner() {
  return [](const ServeRunContext& ctx, ServeRunOutcome& outcome) -> Status {
    try {
      Status kind_err;
      const DesignKind kind = parse_serve_kind(ctx.spec.kind, kind_err);
      if (!kind_err.ok()) return kind_err;

      // Same design-construction glue as the flow job path, so a search job
      // and the flow jobs it would spawn share cache keys.
      DesignSpec spec = spec_for(kind, ctx.spec.scale);
      spec.seed = ctx.spec.seed == 0 ? 1 : ctx.spec.seed;
      spec.clock_period_ps = ctx.spec.clock_ps;
      const Netlist design = generate_design(spec);

      FlowConfig base;
      base.grid_nx = base.grid_ny = ctx.spec.grid;
      base.num_tiers = ctx.spec.tiers;
      base.seed = spec.seed;
      const Placement3D ref =
          place_pseudo3d(design, base.place_params, base.seed,
                         /*legalized=*/true, base.num_tiers);
      base.router = calibrated_router(design, ref, base.grid_nx, 0.70);

      FlowEvaluatorConfig ec;
      ec.cache = ctx.cache;
      ec.deadline = ctx.deadline;
      ec.cancel = ctx.cancel;
      FlowEvaluator evaluator(spec.name, design, base, ec);

      SearchConfig sc;
      sc.rounds =
          static_cast<int>(util::json_num(ctx.request, "rounds", 4.0));
      sc.batch = static_cast<int>(util::json_num(ctx.request, "batch", 4.0));
      sc.init_samples =
          static_cast<int>(util::json_num(ctx.request, "init", 6.0));
      sc.candidates =
          static_cast<int>(util::json_num(ctx.request, "candidates", 256.0));
      sc.promote_fraction = util::json_num(ctx.request, "promote", 0.25);
      sc.xi = util::json_num(ctx.request, "xi", 0.01);
      sc.cheap_screen = util::json_bool(ctx.request, "cheap", true);
      sc.deadline = ctx.deadline;
      sc.cancel = ctx.cancel;
      sc.cache = ctx.cache;
      if (sc.rounds < 0 || sc.init_samples < 1 || sc.batch < 1 ||
          sc.candidates < 1 || sc.promote_fraction <= 0.0 ||
          sc.promote_fraction > 1.0)
        return Status::invalid_argument(
            "search: need rounds >= 0, init >= 1, batch >= 1, candidates >= "
            "1, 0 < promote <= 1");
      const std::string design_name = spec.name;
      if (ctx.emit) {
        sc.on_round = [&ctx, design_name](const SearchRoundRecord& r) {
          const std::vector<std::string> lines =
              search_trace_lines(design_name, r);
          for (std::size_t i = 0; i < lines.size(); ++i)
            ctx.emit(i + 1 == lines.size() ? "round" : "eval", lines[i]);
        };
      }

      Rng rng(static_cast<std::uint64_t>(
          util::json_num(ctx.request, "search_seed", 1.0)));
      const SearchResult res = multi_fidelity_search(evaluator, sc, rng);

      outcome.has_objective = std::isfinite(res.best_objective);
      outcome.objective = res.best_objective;
      outcome.rounds = res.rounds_completed;
      outcome.cheap_evals = res.cheap_evals;
      outcome.full_evals = res.full_evals;
      outcome.deadline_hit = res.deadline_hit;
      outcome.cancelled = res.cancelled;
      return Status();
    } catch (const StatusError& err) {
      return err.status();
    } catch (const std::exception& err) {
      return Status::internal(err.what());
    }
  };
}

}  // namespace dco3d
