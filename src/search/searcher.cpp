#include "search/searcher.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <utility>

#include "flow/cache.hpp"
#include "opt/gp.hpp"
#include "util/jsonl.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace dco3d {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

SearchResult multi_fidelity_search(Evaluator& evaluator,
                                   const SearchConfig& cfg, Rng& rng) {
  SearchResult res;
  const bool cheap = cfg.cheap_screen && evaluator.supports_cheap();

  // Usable full-fidelity observations — the GP's training set.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  const auto cache_stats = [&]() {
    return cfg.cache ? cfg.cache->stats() : ArtifactCacheStats{};
  };

  // Run one round: `full_first` points go straight to full fidelity (the
  // warm-up default), `batch_points` go through cheap screening when it is
  // on. Updates best/observations and appends the round record.
  const auto run_round = [&](int round,
                             const std::vector<PlacementParams>& full_first,
                             const std::vector<PlacementParams>& batch_points,
                             int pool_size) {
    SearchRoundRecord rec;
    rec.round = round;
    rec.candidates = pool_size;
    const auto t0 = Clock::now();
    const ArtifactCacheStats cs0 = cache_stats();

    const auto absorb_full = [&](const PlacementParams& p, const EvalResult& r,
                                 bool promoted) {
      SearchEvalRecord er;
      er.round = round;
      er.candidate = static_cast<int>(rec.evals.size());
      er.fidelity = Fidelity::kFull;
      er.objective = r.objective;
      er.promoted = promoted;
      er.stages_run = r.stages_run;
      er.stages_cached = r.stages_cached;
      er.params = p;
      rec.evals.push_back(std::move(er));
      rec.full_evals++;
      res.full_evals++;
      if (r.status.ok() && std::isfinite(r.objective)) {
        const auto enc = p.encode();
        xs.emplace_back(enc.begin(), enc.end());
        ys.push_back(r.objective);
        rec.round_best = std::min(rec.round_best, r.objective);
        if (r.objective < res.best_objective) {
          res.best_objective = r.objective;
          res.best_params = p;
        }
      }
    };

    if (!full_first.empty()) {
      const auto results = evaluator.evaluate_many(full_first, Fidelity::kFull);
      for (std::size_t i = 0; i < full_first.size(); ++i)
        absorb_full(full_first[i], results[i], false);
    }

    if (!batch_points.empty()) {
      if (!cheap) {
        const auto results =
            evaluator.evaluate_many(batch_points, Fidelity::kFull);
        for (std::size_t i = 0; i < batch_points.size(); ++i)
          absorb_full(batch_points[i], results[i], false);
      } else {
        const auto screened =
            evaluator.evaluate_many(batch_points, Fidelity::kCheap);
        const std::size_t base = rec.evals.size();
        for (std::size_t i = 0; i < batch_points.size(); ++i) {
          SearchEvalRecord er;
          er.round = round;
          er.candidate = static_cast<int>(rec.evals.size());
          er.fidelity = Fidelity::kCheap;
          er.objective = screened[i].objective;
          er.stages_run = screened[i].stages_run;
          er.stages_cached = screened[i].stages_cached;
          er.params = batch_points[i];
          rec.evals.push_back(std::move(er));
          rec.cheap_evals++;
          res.cheap_evals++;
        }
        // Rank by cheap objective (stable on index: failed evaluations are
        // +inf and sink to the back) and promote the top fraction — always
        // at least one — to full fidelity.
        std::vector<std::size_t> order(batch_points.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    if (screened[a].objective != screened[b].objective)
                      return screened[a].objective < screened[b].objective;
                    return a < b;
                  });
        const auto want = static_cast<std::size_t>(std::ceil(
            cfg.promote_fraction * static_cast<double>(batch_points.size())));
        const std::size_t k =
            std::min(batch_points.size(), std::max<std::size_t>(1, want));
        std::vector<PlacementParams> promoted;
        promoted.reserve(k);
        for (std::size_t j = 0; j < k; ++j) {
          rec.evals[base + order[j]].promoted = true;
          promoted.push_back(batch_points[order[j]]);
        }
        rec.promoted = static_cast<int>(k);
        const auto results = evaluator.evaluate_many(promoted, Fidelity::kFull);
        for (std::size_t j = 0; j < promoted.size(); ++j)
          absorb_full(promoted[j], results[j], true);
      }
    }

    const ArtifactCacheStats cs1 = cache_stats();
    rec.cache_hits = cs1.loads - cs0.loads;
    rec.cache_misses = cs1.misses - cs0.misses;
    rec.wall_ms = ms_since(t0);
    rec.best_objective = res.best_objective;
    res.trace.push_back(std::move(rec));
    if (cfg.on_round) cfg.on_round(res.trace.back());
  };

  // Warm-up (round 0): the default Table-I configuration is always the
  // first full-fidelity evaluation (the sequential baseline's contract),
  // followed by init_samples-1 random draws — cheap-screened when on. The
  // rng consumption here is identical to the legacy sequential loop.
  {
    std::vector<PlacementParams> samples;
    for (int i = 1; i < cfg.init_samples; ++i)
      samples.push_back(PlacementParams::sample(rng));
    run_round(0, {PlacementParams{}}, samples, 0);
  }

  const int n = std::max(1, cfg.candidates);
  const int batch = std::max(1, cfg.batch);

  for (int it = 0; it < cfg.rounds; ++it) {
    // Guards at round boundaries: early-commit the best-so-far.
    if (cfg.deadline && cfg.deadline->expired()) {
      res.deadline_hit = true;
      break;
    }
    if (cfg.cancel && cfg.cancel->load(std::memory_order_relaxed)) {
      res.cancelled = true;
      break;
    }

    GaussianProcess gp;
    if (!xs.empty()) gp.fit(xs, ys);

    // Candidate generation is sequential — it is the only consumer of the
    // caller's rng, so the trajectory is a pure function of the seed. Half
    // the pool are fresh random draws, half perturbations of the incumbent
    // (the legacy acquisition, verbatim).
    std::vector<PlacementParams> pool;
    pool.reserve(static_cast<std::size_t>(n));
    std::vector<std::vector<double>> encs(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      PlacementParams cand;
      if (rng.bernoulli(0.5)) {
        cand = PlacementParams::sample(rng);
      } else {
        auto enc = res.best_params.encode();
        for (double& v : enc)
          v = std::clamp(v + rng.normal(0.0, 0.15), 0.0, 1.0);
        cand = PlacementParams::decode(enc);
      }
      const auto enc = cand.encode();
      encs[static_cast<std::size_t>(c)] = {enc.begin(), enc.end()};
      pool.push_back(cand);
    }

    // EI scoring runs on the pool under the fixed-chunk contract: every
    // slot is an independent pure function of the fitted (const) GP, so
    // the result vector is bit-identical at any thread count.
    std::vector<double> ei(static_cast<std::size_t>(n));
    const auto score = [&](const GaussianProcess& g) {
      util::parallel_for(0, n, 32, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t c = b; c < e; ++c)
          ei[static_cast<std::size_t>(c)] = expected_improvement(
              g.predict(encs[static_cast<std::size_t>(c)]),
              res.best_objective, cfg.xi);
      });
    };
    score(gp);

    // Greedy q-EI: pick the EI argmax (first maximum wins — the B=1 case is
    // byte-for-byte the legacy selection), then believe it at its predicted
    // mean, refit, rescore, and pick again. Duplicate encodings are skipped
    // so a round never evaluates the same point twice concurrently.
    std::vector<char> excluded(static_cast<std::size_t>(n), 0);
    std::vector<PlacementParams> selected;
    GaussianProcess cur = gp;
    std::vector<std::vector<double>> fxs = xs;
    std::vector<double> fys = ys;
    for (int b = 0; b < batch; ++b) {
      int best_c = -1;
      double best_ei = -1.0;
      for (int c = 0; c < n; ++c) {
        if (excluded[static_cast<std::size_t>(c)]) continue;
        if (ei[static_cast<std::size_t>(c)] > best_ei) {
          best_ei = ei[static_cast<std::size_t>(c)];
          best_c = c;
        }
      }
      if (best_c < 0) break;  // pool exhausted (all duplicates)
      const auto& picked_enc = encs[static_cast<std::size_t>(best_c)];
      for (int c = 0; c < n; ++c)
        if (encs[static_cast<std::size_t>(c)] == picked_enc)
          excluded[static_cast<std::size_t>(c)] = 1;
      selected.push_back(pool[static_cast<std::size_t>(best_c)]);
      if (b + 1 < batch) {
        fxs.push_back(picked_enc);
        fys.push_back(cur.predict(picked_enc).mean);
        cur.fit(fxs, fys);
        score(cur);
      }
    }

    run_round(it + 1, {}, selected, n);
    res.rounds_completed++;
  }

  return res;
}

// The legacy sequential API, re-expressed as the B=1 / full-fidelity special
// case of the searcher. Bit-identical to the pre-refactor implementation:
// same rng consumption, same first-maximum EI selection, same trace order.
BoResult bayes_optimize(
    const std::function<double(const PlacementParams&)>& objective,
    const BoConfig& cfg, Rng& rng) {
  FunctionEvaluator evaluator(objective);
  SearchConfig sc;
  sc.init_samples = cfg.init_samples;
  sc.rounds = cfg.iterations;
  sc.batch = 1;
  sc.candidates = cfg.candidates;
  sc.xi = cfg.xi;
  const SearchResult sr = multi_fidelity_search(evaluator, sc, rng);

  BoResult out;
  out.best_params = sr.best_params;
  out.best_objective = sr.best_objective;
  for (const SearchRoundRecord& round : sr.trace)
    for (const SearchEvalRecord& e : round.evals)
      out.trace.push_back({e.params, e.objective});
  return out;
}

std::vector<std::string> search_trace_lines(const std::string& design,
                                            const SearchRoundRecord& round) {
  std::vector<std::string> lines;
  lines.reserve(round.evals.size() + 1);
  for (const SearchEvalRecord& e : round.evals) {
    util::JsonWriter w;
    w.field("schema", kSearchTraceSchema);
    w.field("event", "eval");
    if (!design.empty()) w.field("design", design);
    w.field("round", e.round);
    w.field("candidate", e.candidate);
    w.field("fidelity", fidelity_name(e.fidelity));
    w.field("objective", e.objective);  // non-finite (failed) serializes as 0
    w.field("usable", std::isfinite(e.objective));
    w.field("promoted", e.promoted);
    w.field("stages_run", e.stages_run);
    w.field("stages_cached", e.stages_cached);
    lines.push_back(w.done());
  }
  util::JsonWriter w;
  w.field("schema", kSearchTraceSchema);
  w.field("event", "round");
  if (!design.empty()) w.field("design", design);
  w.field("round", round.round);
  w.field("candidates", round.candidates);
  w.field("cheap_evals", round.cheap_evals);
  w.field("full_evals", round.full_evals);
  w.field("promoted", round.promoted);
  w.field("round_best", round.round_best);
  w.field("best_objective", round.best_objective);
  w.field("cache_hits", round.cache_hits);
  w.field("cache_misses", round.cache_misses);
  w.field("wall_ms", round.wall_ms);
  w.field("threads", util::num_threads());
  lines.push_back(w.done());
  return lines;
}

void append_search_trace_file(const std::string& path,
                              const std::string& design,
                              const std::vector<SearchRoundRecord>& rounds) {
  std::ofstream os(path, std::ios::app);
  if (!os)
    throw StatusError(Status::io_error("search trace: cannot open " + path));
  for (const SearchRoundRecord& r : rounds)
    for (const std::string& line : search_trace_lines(design, r))
      os << line << '\n';
  os.flush();
  if (!os)
    throw StatusError(Status::io_error("search trace: write failed on " + path));
}

}  // namespace dco3d
