#pragma once
// The "search" serve job type: runs the multi-fidelity knob search inside a
// resident `dco3d serve` worker lane — the searcher as a service. Clients
// submit {"cmd":"submit","type":"search",...} with the usual design fields
// (kind/scale/grid/tiers/clock_ps/seed) plus search knobs (rounds, batch,
// init, candidates, promote, cheap, xi); per-round search trace records
// stream to waiting clients as "eval"/"round" events, and the final
// objective + eval counts land in the job snapshot. See docs/search.md.
//
// Lives in src/search (not src/flow) so the flow library stays independent
// of the searcher; the CLI installs the runner into ServerConfig::runners.

#include "flow/server.hpp"

namespace dco3d {

/// Build the runner for ServerConfig::runners["search"].
ServeJobRunner make_search_job_runner();

}  // namespace dco3d
