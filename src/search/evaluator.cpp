#include "search/evaluator.hpp"

#include <utility>

#include "flow/batch.hpp"
#include "flow/cache.hpp"
#include "flow/stage.hpp"

namespace dco3d {

const char* fidelity_name(Fidelity f) {
  return f == Fidelity::kCheap ? "cheap" : "full";
}

double search_objective(const StageMetrics& m) {
  return m.overflow + std::max(0.0, -m.wns_ps);
}

std::vector<EvalResult> Evaluator::evaluate_many(
    const std::vector<PlacementParams>& points, Fidelity fidelity) {
  std::vector<EvalResult> out;
  out.reserve(points.size());
  for (const PlacementParams& p : points) out.push_back(evaluate(p, fidelity));
  return out;
}

EvalResult FunctionEvaluator::evaluate(const PlacementParams& params,
                                       Fidelity fidelity) {
  EvalResult r;
  r.fidelity = fidelity;
  const auto& fn =
      (fidelity == Fidelity::kCheap && cheap_) ? cheap_ : full_;
  r.objective = fn(params);
  return r;
}

FlowEvaluator::FlowEvaluator(std::string design_name, Netlist design,
                             FlowConfig base, FlowEvaluatorConfig cfg)
    : design_name_(std::move(design_name)),
      design_(std::move(design)),
      base_(std::move(base)),
      cfg_(std::move(cfg)) {}

EvalResult FlowEvaluator::evaluate(const PlacementParams& params,
                                   Fidelity fidelity) {
  return evaluate_many({params}, fidelity).front();
}

std::vector<EvalResult> FlowEvaluator::evaluate_many(
    const std::vector<PlacementParams>& points, Fidelity fidelity) {
  std::vector<PipelineJob> jobs;
  jobs.reserve(points.size());
  for (const PlacementParams& p : points) {
    PipelineJob job;
    job.name = design_name_;
    FlowConfig cfg = base_;
    cfg.place_params = p;
    job.make_context = [this, cfg]() {
      FlowContext ctx = make_flow_context(design_, cfg, cfg_.optimizer);
      ctx.design_name = design_name_;
      ctx.optimizer_tag = cfg_.optimizer_tag;
      return ctx;
    };
    if (fidelity == Fidelity::kCheap) job.opts.stop_after = cfg_.cheap_stop;
    if (cfg_.cache) {
      job.opts.cache = cfg_.cache;
      job.opts.auto_resume = true;
    }
    job.opts.deadline = cfg_.deadline;
    job.opts.cancel = cfg_.cancel;
    jobs.push_back(std::move(job));
  }

  const std::vector<BatchEntry> entries = run_pipeline_jobs(jobs);

  const Pipeline& pipe = pin3d_pipeline();
  const int cheap_index = pipe.index_of(cfg_.cheap_stop);
  const int full_index = static_cast<int>(pipe.stages().size()) - 1;
  const int need = fidelity == Fidelity::kCheap ? cheap_index : full_index;

  std::vector<EvalResult> out;
  out.reserve(entries.size());
  for (const BatchEntry& e : entries) {
    EvalResult r;
    r.fidelity = fidelity;
    r.status = e.status;
    r.stages_run = e.info.stages_run;
    r.stages_cached = e.info.stages_cached;
    r.wall_ms = e.wall_ms;
    if (e.info.last_stage >= 0)
      r.stop_stage =
          pipe.stages()[static_cast<std::size_t>(e.info.last_stage)].name();
    if (r.status.ok() && e.info.last_stage < need) {
      // The pipeline early-committed (deadline/cancel) before the stage the
      // objective is read from — an unusable point, not a failure.
      r.status = e.info.cancelled
                     ? Status::cancelled("evaluation cancelled mid-flow")
                     : Status::deadline_exceeded(
                           "evaluation early-committed before '" +
                           (need >= 0
                                ? pipe.stages()[static_cast<std::size_t>(need)]
                                      .name()
                                : std::string("?")) +
                           "'");
    }
    if (r.status.ok()) {
      r.objective = search_objective(fidelity == Fidelity::kCheap
                                         ? e.result.after_place
                                         : e.result.signoff);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace dco3d
