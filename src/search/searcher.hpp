#pragma once
// Batched multi-fidelity surrogate search over the Table-I placement-knob
// space — the generalization of the sequential "Pin-3D + BO" baseline the
// repo started from (src/opt). Each round:
//
//   1. fit a GP surrogate to all usable full-fidelity observations;
//   2. generate `candidates` random/perturbed points (sequentially, from the
//      caller's Rng — the deterministic part) and score their expected
//      improvement on util::parallel_for under the fixed-chunk determinism
//      contract (each slot is an independent pure function of the fitted GP,
//      so results are bit-identical at any thread count);
//   3. select B winners q-EI style: greedy EI maximization with a
//      Kriging-believer refit between picks (each pick is appended to a
//      fantasy observation set at its GP-predicted mean, so the next pick
//      avoids clustering);
//   4. evaluate the B winners concurrently through the batch runner —
//      cheap fidelity first when screening is on, with only the top
//      `promote_fraction` re-evaluated as full flows.
//
// With batch=1 and screening off this reduces *exactly* (bit-identically) to
// the old sequential bayes_optimize, which is now a thin wrapper over this
// searcher (opt/bayesopt.hpp). See docs/search.md.

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "opt/bayesopt.hpp"
#include "search/evaluator.hpp"
#include "util/rng.hpp"

namespace dco3d {

class ArtifactCache;

struct SearchConfig {
  int init_samples = 6;    // warm-up evaluations (first is always default)
  int rounds = 10;         // search rounds after warm-up
  int batch = 1;           // candidates evaluated per round (B)
  int candidates = 512;    // EI candidate pool per round
  double xi = 0.01;        // exploration margin
  // Fraction of each evaluated batch promoted from cheap to full fidelity
  // (at least one point is always promoted). Only meaningful with
  // cheap_screen and an evaluator that supports_cheap().
  double promote_fraction = 1.0;
  bool cheap_screen = false;
  // Guards, checked at round boundaries (and passed through to flow
  // evaluations by FlowEvaluator): the search early-commits its best-so-far.
  const Deadline* deadline = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  // When set, per-round cache hit/miss deltas are recorded in the trace.
  ArtifactCache* cache = nullptr;
  // Streaming hook: invoked after every completed round (including the
  // warm-up round 0) — the serve-mode search job streams these to clients.
  std::function<void(const struct SearchRoundRecord&)> on_round;
};

/// One evaluation inside a round, in evaluation order.
struct SearchEvalRecord {
  int round = 0;
  int candidate = 0;          // index within the round's evaluations
  Fidelity fidelity = Fidelity::kFull;
  double objective = std::numeric_limits<double>::infinity();
  bool promoted = false;      // this cheap point was promoted to full
  int stages_run = 0;
  int stages_cached = 0;
  PlacementParams params;
};

/// Per-round summary (one JSON line each in the search trace).
struct SearchRoundRecord {
  int round = 0;              // 0 = warm-up
  int candidates = 0;         // EI pool size scored (0 for warm-up)
  int cheap_evals = 0;
  int full_evals = 0;
  int promoted = 0;
  double round_best = std::numeric_limits<double>::infinity();
  double best_objective = std::numeric_limits<double>::infinity();
  std::uint64_t cache_hits = 0;    // ArtifactCache load delta this round
  std::uint64_t cache_misses = 0;  // ArtifactCache miss delta this round
  double wall_ms = 0.0;
  std::vector<SearchEvalRecord> evals;
};

struct SearchResult {
  PlacementParams best_params;
  double best_objective = std::numeric_limits<double>::infinity();
  int cheap_evals = 0;
  int full_evals = 0;
  int rounds_completed = 0;   // search rounds finished (excludes warm-up)
  bool deadline_hit = false;
  bool cancelled = false;
  std::vector<SearchRoundRecord> trace;
};

/// Minimize the evaluator's objective. Deterministic given the rng state:
/// bit-identical trajectories at any thread count, and with batch=1 /
/// cheap_screen=false identical to the legacy bayes_optimize sequence.
SearchResult multi_fidelity_search(Evaluator& evaluator,
                                   const SearchConfig& cfg, Rng& rng);

// --- Search trace (JSON lines) ---------------------------------------------
//
// Schema "dco3d-search-trace-v1": per-eval records (event "eval": round,
// candidate, fidelity, objective, promoted, stage provenance) followed by a
// per-round summary (event "round": pool size, eval counts, best-so-far,
// cache hit/miss deltas). Validated by tools/check_trace_schema.

inline constexpr const char* kSearchTraceSchema = "dco3d-search-trace-v1";

/// Serialize one round as JSON lines (evals first, round summary last).
std::vector<std::string> search_trace_lines(const std::string& design,
                                            const SearchRoundRecord& round);

/// Append rounds to a JSON-lines file (created if absent). Throws
/// StatusError (kIoError) on stream failure.
void append_search_trace_file(const std::string& path,
                              const std::string& design,
                              const std::vector<SearchRoundRecord>& rounds);

}  // namespace dco3d
