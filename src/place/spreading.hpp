#pragma once
// Density spreading for the analytic placer: per-axis CDF equalization over
// density bins, plus RUDY-driven cell inflation for congestion-driven modes
// (the coarse.* congestion knobs of Table I act here).

#include <vector>

#include "grid/gcell_grid.hpp"
#include "netlist/netlist.hpp"
#include "place/params.hpp"
#include "place/quadratic.hpp"

namespace dco3d {

struct SpreadConfig {
  int bins_x = 32;
  int bins_y = 32;
  double target_util = 0.8;  // desired bin utilization
  double damping = 0.6;      // blend factor toward the equalized position
};

/// Compute spreading target positions for movable cells (cells not in
/// `index` keep their current position in the returned vector).
/// `inflation` optionally scales each cell's area (congestion-driven
/// inflation); pass empty for uniform areas. Only the x/y of cells on
/// `tier` are spread when tier >= 0; tier < 0 spreads all movables together
/// (the pseudo-3D combined pass).
std::vector<Point> compute_spread_targets(const Netlist& netlist,
                                          const Placement3D& placement,
                                          const MovableIndex& index,
                                          const std::vector<double>& inflation,
                                          const SpreadConfig& cfg, int tier = -1);

/// RUDY-based congestion inflation (§ Table I congestion knobs): cells whose
/// tile's routing demand exceeds params.target_routing_density get their
/// area inflated so the spreader pushes neighbors away. Returns per-cell
/// multipliers >= 1. Iterations and strength follow cong_restruct_effort /
/// cong_restruct_iterations; pin_density_aware adds the pin-density map to
/// the demand estimate.
std::vector<double> congestion_inflation(const Netlist& netlist,
                                         const Placement3D& placement,
                                         const GCellGrid& grid,
                                         const PlacementParams& params);

/// Maximum bin utilization (area in bin / bin capacity) over movable cells,
/// a convergence signal for the spreading loop.
double peak_bin_utilization(const Netlist& netlist, const Placement3D& placement,
                            const SpreadConfig& cfg, int tier = -1);

}  // namespace dco3d
