#pragma once
// Detailed placement refinement: legality-preserving wirelength recovery on
// top of the Abacus-legalized placement — the classical post-legalization
// pass commercial flows run before routing. Two local moves, iterated:
//
//   * slide: move a cell within the free interval between its row neighbors
//     to its HPWL-optimal x (the median of its connected pins, clamped);
//   * swap: exchange two same-width row neighbors when that lowers the
//     total HPWL of their incident nets.
//
// Both preserve row alignment, non-overlap, and tier assignment exactly.

#include "netlist/netlist.hpp"

namespace dco3d {

struct DetailedConfig {
  int passes = 2;          // full slide+swap sweeps
  double width_tol = 1e-9; // swap only cells whose widths match within this
};

struct DetailedStats {
  std::size_t slides = 0;
  std::size_t swaps = 0;
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
};

/// Refine a legalized placement in place. Returns move counts and the HPWL
/// before/after (after <= before is guaranteed: every accepted move strictly
/// improves the incident-net HPWL).
DetailedStats detailed_place(const Netlist& netlist, Placement3D& placement,
                             const DetailedConfig& cfg = {});

}  // namespace dco3d
