#include "place/placer3d.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "place/fm_partitioner.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"
#include "place/spreading.hpp"
#include "timing/sta.hpp"
#include "util/logging.hpp"

namespace dco3d {

Placement3D floorplan(const Netlist& netlist, const FloorplanConfig& cfg, Rng& rng,
                      int num_tiers) {
  // Die area: each die carries 1/K of the movable area; macros live on
  // their assigned die and consume area there. Size for the worst die.
  double movable_area = netlist.total_movable_area();
  double macro_area = 0.0;
  std::vector<CellId> macros, ios;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (netlist.is_macro(id)) {
      macros.push_back(id);
      macro_area += netlist.cell_area(id);
    } else if (netlist.is_io(id)) {
      ios.push_back(id);
    }
  }
  // 1.0/K and 1.5/K are exactly 0.5 and 0.75 at K = 2, so the two-die
  // outline is unchanged from the legacy flow.
  const double per_die = movable_area * (1.0 / static_cast<double>(num_tiers)) +
                         macro_area * (1.5 / static_cast<double>(num_tiers));
  const double die_area = std::max(per_die / cfg.utilization, 1e-6);
  const double h = std::sqrt(die_area / cfg.aspect);
  const double w = die_area / h;
  // Snap height to whole placement rows.
  const double rh = netlist.library().row_height();
  const double hh = std::max(std::ceil(h / rh), 4.0) * rh;

  Placement3D pl =
      Placement3D::make(netlist.num_cells(), Rect{0.0, 0.0, w, hh}, num_tiers);

  // IO ring: evenly spaced around the perimeter, alternating tiers.
  const double perim = 2.0 * (w + hh);
  for (std::size_t i = 0; i < ios.size(); ++i) {
    const double d = perim * static_cast<double>(i) / static_cast<double>(ios.size());
    Point p;
    if (d < w)
      p = {d, 0.0};
    else if (d < w + hh)
      p = {w, d - w};
    else if (d < 2 * w + hh)
      p = {w - (d - w - hh), hh};
    else
      p = {0.0, hh - (d - 2 * w - hh)};
    pl.xy[static_cast<std::size_t>(ios[i])] = p;
    pl.tier[static_cast<std::size_t>(ios[i])] =
        static_cast<int>(i % static_cast<std::size_t>(num_tiers));
  }

  // Macros: corners, round-robin across tiers, inset from the edge.
  for (std::size_t m = 0; m < macros.size(); ++m) {
    const CellType& t = netlist.cell_type(macros[m]);
    const double inset = 0.02 * std::min(w, hh);
    Point p;
    switch (m % 4) {
      case 0: p = {inset, inset}; break;
      case 1: p = {w - t.width - inset, inset}; break;
      case 2: p = {inset, hh - t.height - inset}; break;
      default: p = {w - t.width - inset, hh - t.height - inset}; break;
    }
    pl.xy[static_cast<std::size_t>(macros[m])] = p;
    pl.tier[static_cast<std::size_t>(macros[m])] =
        static_cast<int>(m % static_cast<std::size_t>(num_tiers));
  }

  // Movable cells: start near the center with a small jitter so the first
  // quadratic solve is well conditioned.
  const Point c = pl.outline.center();
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id)) continue;
    pl.xy[ci] = {c.x + rng.normal(0.0, 0.05 * w), c.y + rng.normal(0.0, 0.05 * hh)};
    pl.xy[ci].x = std::clamp(pl.xy[ci].x, pl.outline.xlo, pl.outline.xhi);
    pl.xy[ci].y = std::clamp(pl.xy[ci].y, pl.outline.ylo, pl.outline.yhi);
    pl.tier[ci] = 0;
  }
  return pl;
}

GCellGrid make_grid(const Placement3D& placement, int nx, int ny) {
  return GCellGrid(placement.outline, nx, ny);
}

namespace {

/// Net weights derived from the power knobs: low-power modes weight
/// high-fanout (high switching capacitance) nets more so they shorten.
std::vector<double> make_net_weights(const Netlist& netlist,
                                     const PlacementParams& params) {
  std::vector<double> w(netlist.num_nets(), 1.0);
  const double lp = (params.low_power_placement ? 0.3 : 0.0) +
                    0.1 * params.enhanced_low_power_effort;
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    const auto id = static_cast<NetId>(ni);
    w[ni] = netlist.net_weight(id);
    if (lp > 0.0)
      w[ni] *= 1.0 + lp * std::log2(1.0 + static_cast<double>(
                                              netlist.net_num_pins(id) - 1));
  }
  return w;
}

/// One global-placement phase: alternating quadratic solves and density
/// spreading with growing anchor weights.
void global_place_phase(const Netlist& netlist, Placement3D& pl,
                        const MovableIndex& index,
                        const std::vector<double>& net_weights,
                        const PlacementParams& params, int rounds, int tier,
                        double area_scale) {
  SpreadConfig scfg;
  scfg.target_util = std::clamp(params.max_density, 0.55, 0.9);
  scfg.damping = 0.65;

  // First unconstrained solve.
  solve_quadratic(netlist, pl, index, net_weights, nullptr, 0.0, 2);

  GCellGrid grid = make_grid(pl, 32, 32);
  std::vector<double> inflation;
  for (int r = 0; r < rounds; ++r) {
    // Congestion-driven inflation (Table-I congestion knobs).
    if (params.cong_restruct_effort > 0 || params.enable_irap) {
      inflation = congestion_inflation(netlist, pl, grid, params);
    } else {
      inflation.clear();
    }
    // Pseudo-3D combined pass: both tiers share the outline, so halve areas.
    if (area_scale != 1.0) {
      if (inflation.empty()) inflation.assign(netlist.num_cells(), 1.0);
      for (double& v : inflation) v *= area_scale;
    }
    std::vector<Point> target =
        compute_spread_targets(netlist, pl, index, inflation, scfg, tier);
    // Relative anchor weight, doubling per round (capped): early rounds let
    // wirelength dominate, late rounds harden the density distribution.
    const double alpha = std::min(0.05 * std::pow(2.0, r), 1.5);
    solve_quadratic(netlist, pl, index, net_weights, &target, alpha, 2);
  }
}

/// Timing-driven net reweighting: nets on critical paths get heavier weights
/// so the quadratic solves shorten them. The strength is diluted by the
/// congestion knobs — congestion-driven effort competes with timing-driven
/// effort for the same placement budget, exactly the tradeoff commercial
/// placers exhibit (and the reason the paper's "Pin-3D + Cong." and
/// "Pin-3D + BO" baselines lose timing while fixing overflow).
void apply_timing_weights(const Netlist& netlist, const Placement3D& pl,
                          const PlacementParams& params,
                          std::vector<double>& weights) {
  const double strength =
      1.8 / (1.0 + 0.6 * params.cong_restruct_effort +
             0.05 * params.cong_restruct_iterations + (params.enable_irap ? 0.4 : 0.0));
  if (strength <= 0.05) return;
  TimingConfig tc;  // relative criticality only; the period cancels out
  const TimingResult t = run_sta(netlist, pl, tc);
  double lo = 1e18, hi = -1e18;
  for (double s : t.cell_slack) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (hi - lo < 1e-9) return;
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    const auto id = static_cast<NetId>(ni);
    if (netlist.net_is_clock(id)) continue;
    const double slack =
        t.cell_slack[static_cast<std::size_t>(netlist.net_driver(id).cell)];
    const double crit = (hi - slack) / (hi - lo);  // 1 = most critical
    weights[ni] *= 1.0 + strength * crit * crit;
  }
}

}  // namespace

Placement3D place_pseudo3d(const Netlist& netlist, const PlacementParams& params,
                           std::uint64_t seed, bool legalized, int num_tiers) {
  Rng rng(seed);
  FloorplanConfig fcfg;
  fcfg.utilization = std::clamp(params.max_density, 0.55, 0.85);
  Placement3D pl = floorplan(netlist, fcfg, rng, num_tiers);

  const std::vector<double> net_weights = make_net_weights(netlist, params);
  const MovableIndex all = MovableIndex::build(netlist);

  // Phase 1: combined shrunk-2D placement (cells at 1/K area; exactly the
  // legacy 0.5 for the two-die stack).
  const double shrink = 1.0 / static_cast<double>(num_tiers);
  const int rounds1 = 3 + 2 * params.initial_place_effort;
  global_place_phase(netlist, pl, all, net_weights, params, rounds1, /*tier=*/-1,
                     /*area_scale=*/shrink);
  if (params.two_pass) {
    // Second pass re-solves from the spread state for a better WL/density
    // tradeoff, as ICC2's two_pass does.
    global_place_phase(netlist, pl, all, net_weights, params, 2, -1, shrink);
  }

  // Phase 1.5: timing-driven reweighting + a short timing-driven solve.
  std::vector<double> timed_weights = net_weights;
  apply_timing_weights(netlist, pl, params, timed_weights);
  global_place_phase(netlist, pl, all, timed_weights, params, 2, -1, shrink);

  // Phase 2: tier assignment (bin checkerboard + FM min-cut).
  FmConfig fm;
  fm.balance_tol = 0.03;
  partition_tiers(netlist, pl, fm);

  // Phase 3: per-die refinement.
  const int rounds2 = 2 + params.final_place_effort;
  for (int tier = 0; tier < pl.num_tiers; ++tier) {
    std::vector<bool> on_tier(netlist.num_cells(), false);
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
      on_tier[ci] = netlist.is_movable(static_cast<CellId>(ci)) &&
                    pl.tier[ci] == tier;
    const MovableIndex idx = MovableIndex::build(netlist, &on_tier);
    global_place_phase(netlist, pl, idx, timed_weights, params, rounds2, tier, 1.0);
  }

  // Optional incremental routability-aware pass (flow.enable_irap).
  if (params.enable_irap) {
    GCellGrid grid = make_grid(pl, 32, 32);
    SpreadConfig scfg;
    scfg.target_util = std::clamp(params.congestion_driven_max_util, 0.5, 0.9);
    for (int tier = 0; tier < pl.num_tiers; ++tier) {
      std::vector<bool> on_tier(netlist.num_cells(), false);
      for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
        on_tier[ci] = netlist.is_movable(static_cast<CellId>(ci)) &&
                      pl.tier[ci] == tier;
      const MovableIndex idx = MovableIndex::build(netlist, &on_tier);
      auto inflation = congestion_inflation(netlist, pl, grid, params);
      std::vector<Point> target =
          compute_spread_targets(netlist, pl, idx, inflation, scfg, tier);
      solve_quadratic(netlist, pl, idx, timed_weights, &target, 0.1, 1);
    }
  }

  if (legalized) legalize_all(netlist, pl, params);
  return pl;
}

}  // namespace dco3d
