#pragma once
// Placement parameters mirroring Table I of the paper. In the paper these are
// Synopsys ICC2 app options sampled to build the training dataset (300
// layouts per design) and searched by the Bayesian-optimization baseline;
// here they steer the equivalent knobs of our analytic placer/flow.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dco3d {

/// The 16 knobs of Table I with identical names, types, and ranges.
struct PlacementParams {
  bool pin_density_aware = false;            // coarse.pin_density_aware
  double target_routing_density = 0.8;       // coarse.target_routing_density [0,1]
  double adv_node_cong_max_util = 0.75;      // coarse.adv_node_cong_max_util [0,1]
  double congestion_driven_max_util = 0.75;  // coarse.congestion_driven_max_util [0,1]
  int cong_restruct_effort = 2;              // coarse.cong_restruct_effort [0,4]
  int cong_restruct_iterations = 3;          // coarse.cong_restruct_iterations [0,10]
  int enhanced_low_power_effort = 0;         // coarse.enhanced_low_power_effort [0,4]
  bool low_power_placement = false;          // coarse.low_power_placement
  double max_density = 0.8;                  // coarse.max_density [0,1]
  int displacement_threshold = 5;            // legalize.displacement_threshold [0,10]
  bool two_pass = false;                     // initial_place.two_pass
  bool global_route_based = false;           // initial_drc.global_route_based
  bool enable_ccd = false;                   // flow.enable_ccd
  int initial_place_effort = 1;              // initial_place.effort [0,2]
  int final_place_effort = 1;                // final_place.effort [0,2]
  bool enable_irap = false;                  // flow.enable_irap

  /// Uniform sample over the Table-I ranges (dataset construction, §III-A).
  static PlacementParams sample(Rng& rng);

  /// Congestion-focused preset: the "Pin-3D + Cong." baseline (ICC2
  /// congestion-driven placement at the highest effort).
  static PlacementParams congestion_focused();

  /// Encode to a fixed-length numeric vector in [0,1]^16 (for the BO
  /// surrogate over the mixed space).
  std::array<double, 16> encode() const;
  /// Inverse of encode (values are clamped/rounded into range).
  static PlacementParams decode(const std::array<double, 16>& v);

  /// Human-readable one-line summary.
  std::string summary() const;
};

/// Knob metadata (name + type) in Table-I order, for reports.
struct ParamInfo {
  const char* name;
  const char* type;
};
const std::array<ParamInfo, 16>& param_table();

}  // namespace dco3d
