#pragma once
// Quadratic (bound-to-bound) wirelength placement solver.
//
// This is the analytic global-placement engine underneath our ICC2
// substitute: per-axis B2B net model [Spindler et al.] assembled into a
// sparse SPD system solved by Jacobi-preconditioned conjugate gradient.
// Fixed cells (IO pads, macros) enter as boundary terms; density spreading
// (spreading.hpp) supplies anchor pseudo-nets between rounds.

#include <tuple>
#include <vector>

#include "netlist/netlist.hpp"

namespace dco3d {

/// Sparse symmetric positive-definite system in "diagonal + off-diagonal
/// triplets" form, sized over movable cells only.
struct SpdSystem {
  std::vector<double> diag;
  std::vector<double> rhs;
  // Off-diagonal entries (i, j, w) with i < j; the matrix value is -w.
  std::vector<std::tuple<std::int32_t, std::int32_t, double>> off;

  explicit SpdSystem(std::size_t n) : diag(n, 0.0), rhs(n, 0.0) {}
  std::size_t size() const { return diag.size(); }

  /// Add a two-pin connection of weight w between movable indices a and b.
  void add_edge(std::int32_t a, std::int32_t b, double w);
  /// Add a connection of weight w from movable index a to fixed coordinate c.
  void add_fixed(std::int32_t a, double w, double c);

  /// y = A * x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;
  /// Solve A x = rhs by Jacobi-preconditioned CG, starting from x.
  void solve_cg(std::vector<double>& x, int max_iters = 300,
                double tol = 1e-7) const;
};

/// Index map between cell ids and the movable-only solver indices.
struct MovableIndex {
  std::vector<std::int32_t> cell_to_idx;  // -1 for fixed cells
  std::vector<CellId> idx_to_cell;

  static MovableIndex build(const Netlist& netlist,
                            const std::vector<bool>* include = nullptr);
  std::size_t size() const { return idx_to_cell.size(); }
};

enum class Axis { kX, kY };

/// Assemble the B2B system for one axis from current pin positions.
/// `include` (optional) restricts which cells are movable for this solve
/// (used by per-die refinement); excluded cells act as fixed terminals.
/// Nets whose pins all sit on excluded+fixed cells contribute nothing.
SpdSystem build_b2b_system(const Netlist& netlist, const Placement3D& placement,
                           Axis axis, const MovableIndex& index,
                           const std::vector<double>& net_weights);

/// Add anchor pseudo-nets pulling each movable cell toward `target` with
/// per-cell weight `alpha`.
void add_anchors(SpdSystem& system, const MovableIndex& index,
                 const std::vector<Point>& target, Axis axis, double alpha);

/// One full B2B solve for both axes, updating `placement` in place. Runs
/// `b2b_rounds` reweighting iterations (the B2B model is itself iterative).
void solve_quadratic(const Netlist& netlist, Placement3D& placement,
                     const MovableIndex& index,
                     const std::vector<double>& net_weights,
                     const std::vector<Point>* anchor_target, double anchor_alpha,
                     int b2b_rounds = 2);

}  // namespace dco3d
