#pragma once
// Fiduccia–Mattheyses hypergraph partitioning for tier assignment.
//
// Pseudo-3D flows assign z-coordinates by partitioning the placed netlist
// into K tiers under an area-balance constraint while minimizing the number
// of cut nets (each cut is a face-to-face bond pad / TSV stack). We seed FM
// with a bin-based partition of the 2D placement that deals each bin's cells
// to the lightest tier (so every tier inherits a similar area distribution,
// as Pin-3D's bin-based assignment does) and then run gain-bucket FM passes
// where each movable cell is scored against its best of the K-1 candidate
// target tiers. With num_tiers = 2 this is exactly the classic FM
// bipartition the flow shipped with.

#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace dco3d {

struct FmConfig {
  // K = 2: allowed |areaTop - areaBot| / totalArea.
  // K > 2: every tier must stay within totalArea * (1/K +- balance_tol).
  double balance_tol = 0.03;
  int max_passes = 4;
  int bins = 16;  // checkerboard seeding granularity
};

/// Compute an area-balanced, placement-aware initial tier assignment:
/// cells are bucketed into bins by (x, y) and dealt within each bin by
/// descending area to the currently lightest tier (ties to the lowest
/// index). Fixed cells keep placement.tier.
std::vector<int> seed_tiers_checkerboard(const Netlist& netlist,
                                         const Placement3D& placement,
                                         int bins, int num_tiers = 2);

/// Run FM passes on `tiers` (modified in place), minimizing cut nets under
/// the balance constraint. Fixed cells never move. Returns the final cut.
std::size_t fm_refine(const Netlist& netlist, std::vector<int>& tiers,
                      const FmConfig& cfg, int num_tiers = 2);

/// Convenience: seed + refine with K = placement.num_tiers, writing tier
/// assignments into placement.
std::size_t partition_tiers(const Netlist& netlist, Placement3D& placement,
                            const FmConfig& cfg);

/// Number of nets spanning more than one part under an assignment.
std::size_t cut_size(const Netlist& netlist, const std::vector<int>& tiers);

}  // namespace dco3d
