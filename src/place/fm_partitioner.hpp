#pragma once
// Fiduccia–Mattheyses hypergraph bipartitioning for tier assignment.
//
// Pseudo-3D flows assign z-coordinates by partitioning the placed netlist
// into two dies under an area-balance constraint while minimizing the number
// of cut nets (each cut is a face-to-face bond pad). We seed FM with a
// bin-based checkerboard partition of the 2D placement (so both dies inherit
// a similar area distribution, as Pin-3D's bin-based assignment does) and
// then run gain-bucket FM passes.

#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace dco3d {

struct FmConfig {
  double balance_tol = 0.03;  // allowed |areaTop - areaBot| / totalArea
  int max_passes = 4;
  int bins = 16;  // checkerboard seeding granularity
};

/// Compute an area-balanced, placement-aware initial tier assignment:
/// cells are bucketed into bins by (x, y) and alternately assigned within
/// each bin by descending area. Fixed cells keep placement.tier.
std::vector<int> seed_tiers_checkerboard(const Netlist& netlist,
                                         const Placement3D& placement,
                                         int bins);

/// Run FM passes on `tiers` (modified in place), minimizing cut nets under
/// the balance constraint. Fixed cells never move. Returns the final cut.
std::size_t fm_refine(const Netlist& netlist, std::vector<int>& tiers,
                      const FmConfig& cfg);

/// Convenience: seed + refine, writing tier assignments into placement.
std::size_t partition_tiers(const Netlist& netlist, Placement3D& placement,
                            const FmConfig& cfg);

/// Number of nets spanning both parts under an assignment.
std::size_t cut_size(const Netlist& netlist, const std::vector<int>& tiers);

}  // namespace dco3d
