#include "place/quadratic.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dco3d {

void SpdSystem::add_edge(std::int32_t a, std::int32_t b, double w) {
  assert(a != b);
  if (a > b) std::swap(a, b);
  diag[static_cast<std::size_t>(a)] += w;
  diag[static_cast<std::size_t>(b)] += w;
  off.emplace_back(a, b, w);
}

void SpdSystem::add_fixed(std::int32_t a, double w, double c) {
  diag[static_cast<std::size_t>(a)] += w;
  rhs[static_cast<std::size_t>(a)] += w * c;
}

void SpdSystem::multiply(const std::vector<double>& x, std::vector<double>& y) const {
  const std::size_t n = size();
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) y[i] = diag[i] * x[i];
  for (const auto& [i, j, w] : off) {
    y[static_cast<std::size_t>(i)] -= w * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(j)] -= w * x[static_cast<std::size_t>(i)];
  }
}

void SpdSystem::solve_cg(std::vector<double>& x, int max_iters, double tol) const {
  const std::size_t n = size();
  assert(x.size() == n);
  std::vector<double> r(n), zvec(n), p(n), ap(n);
  multiply(x, ap);
  double rhs_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = rhs[i] - ap[i];
    rhs_norm += rhs[i] * rhs[i];
  }
  rhs_norm = std::sqrt(std::max(rhs_norm, 1e-30));
  auto precond = [&](const std::vector<double>& v, std::vector<double>& out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = v[i] / std::max(diag[i], 1e-12);
  };
  precond(r, zvec);
  p = zvec;
  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) rz += r[i] * zvec[i];
  for (int it = 0; it < max_iters; ++it) {
    double rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) rnorm += r[i] * r[i];
    if (std::sqrt(rnorm) <= tol * rhs_norm) break;
    multiply(p, ap);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    if (pap <= 0.0) break;  // numerical safety
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    precond(r, zvec);
    double rz_new = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz_new += r[i] * zvec[i];
    const double beta = rz_new / std::max(rz, 1e-30);
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = zvec[i] + beta * p[i];
  }
}

MovableIndex MovableIndex::build(const Netlist& netlist,
                                 const std::vector<bool>* include) {
  MovableIndex m;
  m.cell_to_idx.assign(netlist.num_cells(), -1);
  for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
    const auto id = static_cast<CellId>(i);
    if (!netlist.is_movable(id)) continue;
    if (include && !(*include)[i]) continue;
    m.cell_to_idx[i] = static_cast<std::int32_t>(m.idx_to_cell.size());
    m.idx_to_cell.push_back(id);
  }
  return m;
}

namespace {

struct AxisPin {
  std::int32_t mov_idx;  // -1 if fixed for this solve
  double coord;
};

}  // namespace

SpdSystem build_b2b_system(const Netlist& netlist, const Placement3D& placement,
                           Axis axis, const MovableIndex& index,
                           const std::vector<double>& net_weights) {
  SpdSystem sys(index.size());
  std::vector<AxisPin> pins;
  // Distance floor relative to the die: without it, clumped placements give
  // near-singular 1/d weights that overpower any density anchor and the
  // solve collapses back onto itself.
  const double kMinDist =
      0.002 * (placement.outline.width() + placement.outline.height());

  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    const auto id = static_cast<NetId>(ni);
    const double wnet = net_weights.empty() ? netlist.net_weight(id) : net_weights[ni];
    if (wnet <= 0.0 || netlist.net_num_pins(id) < 2) continue;

    pins.clear();
    // Stored pin order is driver-first, matching the legacy driver/sink walk.
    for (const Pin& p : netlist.net_pins(id)) {
      const Point pos = placement.pin_position(p);
      const double c = (axis == Axis::kX) ? pos.x : pos.y;
      pins.push_back({index.cell_to_idx[static_cast<std::size_t>(p.cell)], c});
    }

    // Identify boundary pins on this axis.
    std::size_t lo = 0, hi = 0;
    for (std::size_t i = 1; i < pins.size(); ++i) {
      if (pins[i].coord < pins[lo].coord) lo = i;
      if (pins[i].coord > pins[hi].coord) hi = i;
    }
    if (lo == hi) hi = (lo + 1) % pins.size();

    const double scale = wnet * 2.0 / static_cast<double>(pins.size() - 1);
    auto connect = [&](std::size_t a, std::size_t b) {
      if (a == b) return;
      const AxisPin& pa = pins[a];
      const AxisPin& pb = pins[b];
      if (pa.mov_idx < 0 && pb.mov_idx < 0) return;
      const double w = scale / std::max(std::abs(pa.coord - pb.coord), kMinDist);
      if (pa.mov_idx >= 0 && pb.mov_idx >= 0) {
        if (pa.mov_idx != pb.mov_idx) sys.add_edge(pa.mov_idx, pb.mov_idx, w);
        // Same movable cell through two pins: no net force on the cell.
      } else if (pa.mov_idx >= 0) {
        sys.add_fixed(pa.mov_idx, w, pb.coord);
      } else {
        sys.add_fixed(pb.mov_idx, w, pa.coord);
      }
    };

    // B2B: boundary-boundary plus every internal pin to both boundaries.
    connect(lo, hi);
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (i == lo || i == hi) continue;
      connect(i, lo);
      connect(i, hi);
    }
  }
  return sys;
}

void add_anchors(SpdSystem& system, const MovableIndex& index,
                 const std::vector<Point>& target, Axis axis, double alpha) {
  for (std::size_t k = 0; k < index.size(); ++k) {
    const auto ci = static_cast<std::size_t>(index.idx_to_cell[k]);
    const double c = (axis == Axis::kX) ? target[ci].x : target[ci].y;
    system.add_fixed(static_cast<std::int32_t>(k), alpha, c);
  }
}

void solve_quadratic(const Netlist& netlist, Placement3D& placement,
                     const MovableIndex& index,
                     const std::vector<double>& net_weights,
                     const std::vector<Point>* anchor_target, double anchor_alpha,
                     int b2b_rounds) {
  if (index.size() == 0) return;
  for (int round = 0; round < b2b_rounds; ++round) {
    for (Axis axis : {Axis::kX, Axis::kY}) {
      SpdSystem sys = build_b2b_system(netlist, placement, axis, index, net_weights);
      if (anchor_target && anchor_alpha > 0.0) {
        // Anchor strength is relative to the mean connectivity weight so the
        // density force keeps pace with the wirelength force at any scale.
        double mean_diag = 0.0;
        for (double d : sys.diag) mean_diag += d;
        mean_diag /= static_cast<double>(sys.size());
        add_anchors(sys, index, *anchor_target, axis,
                    anchor_alpha * std::max(mean_diag, 1e-9));
      }
      // Guard: cells with no connectivity keep their position via a weak
      // self-anchor so the system stays non-singular.
      for (std::size_t k = 0; k < index.size(); ++k) {
        if (sys.diag[k] <= 0.0) {
          const auto ci = static_cast<std::size_t>(index.idx_to_cell[k]);
          const double c = (axis == Axis::kX) ? placement.xy[ci].x : placement.xy[ci].y;
          sys.add_fixed(static_cast<std::int32_t>(k), 1.0, c);
        }
      }
      std::vector<double> x(index.size());
      for (std::size_t k = 0; k < index.size(); ++k) {
        const auto ci = static_cast<std::size_t>(index.idx_to_cell[k]);
        x[k] = (axis == Axis::kX) ? placement.xy[ci].x : placement.xy[ci].y;
      }
      sys.solve_cg(x);
      const Rect& ol = placement.outline;
      for (std::size_t k = 0; k < index.size(); ++k) {
        const auto ci = static_cast<std::size_t>(index.idx_to_cell[k]);
        if (axis == Axis::kX)
          placement.xy[ci].x = std::clamp(x[k], ol.xlo, ol.xhi);
        else
          placement.xy[ci].y = std::clamp(x[k], ol.ylo, ol.yhi);
      }
    }
  }
}

}  // namespace dco3d
