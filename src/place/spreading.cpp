#include "place/spreading.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "grid/feature_maps.hpp"

namespace dco3d {

namespace {

/// Piecewise-linear CDF equalization along one axis within one slab.
/// `hist` holds area per bin; returns for a coordinate fraction f in [0,1]
/// the equalized fraction.
class CdfMap {
 public:
  explicit CdfMap(const std::vector<double>& hist) {
    cum_.resize(hist.size() + 1, 0.0);
    for (std::size_t i = 0; i < hist.size(); ++i) cum_[i + 1] = cum_[i] + hist[i];
    total_ = cum_.back();
  }

  double map(double f) const {
    if (total_ <= 0.0) return f;
    const double pos = std::clamp(f, 0.0, 1.0) * static_cast<double>(cum_.size() - 1);
    const auto b = static_cast<std::size_t>(
        std::min(pos, static_cast<double>(cum_.size() - 2)));
    const double frac = pos - static_cast<double>(b);
    const double c = cum_[b] + frac * (cum_[b + 1] - cum_[b]);
    return c / total_;
  }

 private:
  std::vector<double> cum_;
  double total_ = 0.0;
};

}  // namespace

std::vector<Point> compute_spread_targets(const Netlist& netlist,
                                          const Placement3D& placement,
                                          const MovableIndex& index,
                                          const std::vector<double>& inflation,
                                          const SpreadConfig& cfg, int tier) {
  const Rect& ol = placement.outline;
  std::vector<Point> target = placement.xy;

  auto area_of = [&](CellId id) {
    double a = netlist.cell_area(id);
    if (!inflation.empty()) a *= inflation[static_cast<std::size_t>(id)];
    return a;
  };
  auto in_scope = [&](CellId id) {
    return tier < 0 || placement.tier[static_cast<std::size_t>(id)] == tier;
  };

  // Pass 1: equalize x within horizontal slabs. Pass 2: y within vertical
  // slabs, using the updated x.
  for (int pass = 0; pass < 2; ++pass) {
    const bool x_pass = pass == 0;
    const int slabs = x_pass ? cfg.bins_y : cfg.bins_x;
    const int bins = x_pass ? cfg.bins_x : cfg.bins_y;
    // Per-slab histogram of (inflated) area.
    std::vector<std::vector<double>> hist(
        static_cast<std::size_t>(slabs), std::vector<double>(static_cast<std::size_t>(bins), 0.0));
    auto slab_of = [&](const Point& p) {
      const double f = x_pass ? (p.y - ol.ylo) / ol.height() : (p.x - ol.xlo) / ol.width();
      return std::clamp(static_cast<int>(f * slabs), 0, slabs - 1);
    };
    auto bin_frac = [&](const Point& p) {
      return x_pass ? (p.x - ol.xlo) / ol.width() : (p.y - ol.ylo) / ol.height();
    };
    for (std::size_t k = 0; k < index.size(); ++k) {
      const CellId id = index.idx_to_cell[k];
      if (!in_scope(id)) continue;
      const Point& p = target[static_cast<std::size_t>(id)];
      const int s = slab_of(p);
      const int b = std::clamp(static_cast<int>(bin_frac(p) * bins), 0, bins - 1);
      hist[static_cast<std::size_t>(s)][static_cast<std::size_t>(b)] += area_of(id);
    }
    // Blend histograms with a uniform floor so sparse slabs don't collapse
    // everything to a point and dense slabs equalize strongly.
    std::vector<CdfMap> maps;
    maps.reserve(static_cast<std::size_t>(slabs));
    for (int s = 0; s < slabs; ++s) {
      auto& h = hist[static_cast<std::size_t>(s)];
      double total = 0.0;
      for (double v : h) total += v;
      const double floor_v = std::max(total, 1e-12) / static_cast<double>(bins) * 0.35;
      for (double& v : h) v += floor_v;
      maps.emplace_back(h);
    }
    for (std::size_t k = 0; k < index.size(); ++k) {
      const CellId id = index.idx_to_cell[k];
      if (!in_scope(id)) continue;
      Point& p = target[static_cast<std::size_t>(id)];
      const int s = slab_of(p);
      const double f = bin_frac(p);
      const double fe = maps[static_cast<std::size_t>(s)].map(f);
      const double blended = f + cfg.damping * (fe - f);
      if (x_pass)
        p.x = ol.xlo + blended * ol.width();
      else
        p.y = ol.ylo + blended * ol.height();
    }
  }
  return target;
}

std::vector<double> congestion_inflation(const Netlist& netlist,
                                         const Placement3D& placement,
                                         const GCellGrid& grid,
                                         const PlacementParams& params) {
  std::vector<double> inflation(netlist.num_cells(), 1.0);
  if (params.cong_restruct_effort <= 0 && params.cong_restruct_iterations <= 0)
    return inflation;

  FeatureMaps fm = compute_feature_maps(netlist, placement, grid);
  const std::int64_t hw = static_cast<std::int64_t>(grid.ny()) * grid.nx();

  // Demand per tile per die: 2D + 3D RUDY (optionally + pin density).
  const int num_tiers = placement.num_tiers;
  std::vector<std::vector<float>> demand(static_cast<std::size_t>(num_tiers));
  float dmax = 1e-9f;
  for (int die = 0; die < num_tiers; ++die) {
    demand[static_cast<std::size_t>(die)].assign(static_cast<std::size_t>(hw), 0.0f);
    auto d = fm.die[static_cast<std::size_t>(die)].data();
    for (std::int64_t i = 0; i < hw; ++i) {
      float v = d[static_cast<std::size_t>(kRudy2D * hw + i)] +
                d[static_cast<std::size_t>(kRudy3D * hw + i)];
      if (params.pin_density_aware)
        v += 0.05f * d[static_cast<std::size_t>(kPinDensity * hw + i)];
      demand[static_cast<std::size_t>(die)][static_cast<std::size_t>(i)] = v;
      dmax = std::max(dmax, v);
    }
  }

  // Tiles whose normalized demand exceeds the target routing density inflate
  // the cells they contain; strength grows with the congestion knobs.
  const double threshold = std::clamp(params.target_routing_density, 0.2, 0.95);
  const double strength = 0.3 * (1 + params.cong_restruct_effort) +
                          0.1 * params.cong_restruct_iterations;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id)) continue;
    const int die = std::clamp(placement.tier[ci], 0, num_tiers - 1);
    const auto tile = static_cast<std::size_t>(grid.tile_of(placement.xy[ci]));
    const double norm = demand[static_cast<std::size_t>(die)][tile] / dmax;
    if (norm > threshold) {
      const double excess = (norm - threshold) / std::max(1.0 - threshold, 1e-6);
      inflation[ci] = 1.0 + strength * excess;
    }
  }
  return inflation;
}

double peak_bin_utilization(const Netlist& netlist, const Placement3D& placement,
                            const SpreadConfig& cfg, int tier) {
  const Rect& ol = placement.outline;
  std::vector<double> util(static_cast<std::size_t>(cfg.bins_x) * cfg.bins_y, 0.0);
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id)) continue;
    if (tier >= 0 && placement.tier[ci] != tier) continue;
    const Point& p = placement.xy[ci];
    const int bx = std::clamp(
        static_cast<int>((p.x - ol.xlo) / ol.width() * cfg.bins_x), 0, cfg.bins_x - 1);
    const int by = std::clamp(
        static_cast<int>((p.y - ol.ylo) / ol.height() * cfg.bins_y), 0, cfg.bins_y - 1);
    util[static_cast<std::size_t>(by) * cfg.bins_x + bx] += netlist.cell_area(id);
  }
  const double cap = ol.area() / (static_cast<double>(cfg.bins_x) * cfg.bins_y);
  double peak = 0.0;
  for (double u : util) peak = std::max(peak, u / cap);
  return peak;
}

}  // namespace dco3d
