#include "place/legalize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace dco3d {

namespace {

// Abacus-style per-segment legalization [Spindler et al., "Abacus"]: cells
// are inserted in ascending x; within a row segment they form clusters that
// are optimally shifted (average of desired positions) and merged when they
// collide, so cells can move left as well as right and no space is wasted.

struct Cluster {
  double x = 0.0;  // left edge
  double w = 0.0;  // total width
  double q = 0.0;  // sum over cells of (desired_x - offset_in_cluster)
  double e = 0.0;  // weight (#cells)
  std::size_t first_cell = 0;  // index into the segment's cell list
};

struct SegCell {
  CellId id;
  double desired_x;
  double width;
};

/// One macro-free interval of a placement row.
struct Segment {
  double y = 0.0;
  double xlo = 0.0;
  double xhi = 0.0;
  double used = 0.0;
  std::vector<SegCell> cells;
  std::vector<Cluster> clusters;

  double width() const { return xhi - xlo; }

  void place_cluster(Cluster& c) const {
    c.x = std::clamp(c.q / c.e, xlo, std::max(xhi - c.w, xlo));
  }

  /// Insert a cell (called in globally ascending desired_x order).
  void add(CellId id, double desired_x, double cell_width) {
    cells.push_back({id, desired_x, cell_width});
    Cluster nc;
    nc.w = cell_width;
    nc.q = desired_x;
    nc.e = 1.0;
    nc.first_cell = cells.size() - 1;
    place_cluster(nc);
    clusters.push_back(nc);
    // Collapse overlapping clusters from the right.
    while (clusters.size() >= 2) {
      Cluster& prev = clusters[clusters.size() - 2];
      Cluster& last = clusters.back();
      if (prev.x + prev.w <= last.x + 1e-12) break;
      // merge last into prev: offsets of last's cells grow by prev.w.
      prev.q += last.q - last.e * prev.w;
      prev.e += last.e;
      prev.w += last.w;
      clusters.pop_back();
      place_cluster(clusters.back());
    }
    used += cell_width;
  }

};

}  // namespace

LegalizeStats legalize_tier(const Netlist& netlist, Placement3D& placement,
                            int tier, const PlacementParams& params) {
  LegalizeStats stats;
  const Rect& ol = placement.outline;
  const double rh = netlist.library().row_height();
  const int n_rows = std::max(1, static_cast<int>(ol.height() / rh));

  // Macro blockages on this tier.
  std::vector<Rect> macros;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_macro(id) || placement.tier[ci] != tier) continue;
    const CellType& t = netlist.cell_type(id);
    macros.push_back({placement.xy[ci].x, placement.xy[ci].y,
                      placement.xy[ci].x + t.width, placement.xy[ci].y + t.height});
  }

  // Build row segments (rows minus macro intervals).
  std::vector<Segment> segments;
  for (int r = 0; r < n_rows; ++r) {
    const double y = ol.ylo + r * rh;
    std::vector<std::pair<double, double>> blocks;
    for (const Rect& m : macros)
      if (y + rh > m.ylo && y < m.yhi)
        blocks.emplace_back(std::max(m.xlo, ol.xlo), std::min(m.xhi, ol.xhi));
    std::sort(blocks.begin(), blocks.end());
    double cursor = ol.xlo;
    auto push_segment = [&](double lo, double hi) {
      if (hi - lo > 1e-9) {
        Segment s;
        s.y = y;
        s.xlo = lo;
        s.xhi = hi;
        segments.push_back(std::move(s));
      }
    };
    for (const auto& [blo, bhi] : blocks) {
      push_segment(cursor, blo);
      cursor = std::max(cursor, bhi);
    }
    push_segment(cursor, ol.xhi);
  }
  if (segments.empty()) return stats;

  // Cells of this tier in ascending desired x (Abacus processing order).
  std::vector<CellId> order;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (netlist.is_movable(id) && placement.tier[ci] == tier) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return placement.xy[static_cast<std::size_t>(a)].x <
           placement.xy[static_cast<std::size_t>(b)].x;
  });

  const double window_y = (4 + params.displacement_threshold) * rh;
  for (CellId id : order) {
    const auto ci = static_cast<std::size_t>(id);
    const CellType& t = netlist.cell_type(id);
    const Point desired = placement.xy[ci];

    // Pick the cheapest segment with remaining capacity; widen the search if
    // everything within the displacement window is full.
    auto seg_cost = [&](const Segment& s) {
      double cx = std::clamp(desired.x, s.xlo, std::max(s.xhi - t.width, s.xlo));
      return std::abs(cx - desired.x) + std::abs(s.y - desired.y) +
             0.35 * s.used / std::max(s.width(), 1e-9);  // fill balancing
    };
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < 2 && best < 0; ++pass) {
      for (std::size_t si = 0; si < segments.size(); ++si) {
        const Segment& s = segments[si];
        if (pass == 0 && std::abs(s.y - desired.y) > window_y) continue;
        if (s.used + t.width > s.width() + 1e-9) continue;
        const double c = seg_cost(s);
        if (c < best_cost) {
          best_cost = c;
          best = static_cast<int>(si);
        }
      }
    }
    if (best < 0) {
      // Total overflow: drop into the emptiest segment regardless.
      for (std::size_t si = 0; si < segments.size(); ++si)
        if (best < 0 || segments[si].used / std::max(segments[si].width(), 1e-9) <
                            segments[static_cast<std::size_t>(best)].used /
                                std::max(segments[static_cast<std::size_t>(best)].width(), 1e-9))
          best = static_cast<int>(si);
    }
    segments[static_cast<std::size_t>(best)].add(id, desired.x, t.width);
  }

  // Resolve final positions.
  for (Segment& s : segments) {
    std::size_t cell_idx = 0;
    for (const Cluster& c : s.clusters) {
      double x = c.x;
      const auto count = static_cast<std::size_t>(c.e + 0.5);
      for (std::size_t k = 0; k < count && cell_idx < s.cells.size(); ++k, ++cell_idx) {
        const SegCell& sc = s.cells[cell_idx];
        const auto ci = static_cast<std::size_t>(sc.id);
        // Over-capacity fallback can produce clusters wider than the die;
        // keep every cell inside the outline (overlap is then unavoidable
        // but bounded, and routing/maps stay well-defined).
        const double xc =
            std::clamp(x, ol.xlo, std::max(ol.xhi - sc.width, ol.xlo));
        const double disp = std::abs(xc - placement.xy[ci].x) +
                            std::abs(s.y - placement.xy[ci].y);
        placement.xy[ci] = {xc, s.y};
        x += sc.width;
        stats.total_displacement += disp;
        stats.max_displacement = std::max(stats.max_displacement, disp);
        ++stats.cells;
      }
    }
  }
  return stats;
}

LegalizeStats legalize_all(const Netlist& netlist, Placement3D& placement,
                           const PlacementParams& params) {
  LegalizeStats a = legalize_tier(netlist, placement, 0, params);
  for (int tier = 1; tier < placement.num_tiers; ++tier) {
    const LegalizeStats b = legalize_tier(netlist, placement, tier, params);
    a.total_displacement += b.total_displacement;
    a.max_displacement = std::max(a.max_displacement, b.max_displacement);
    a.cells += b.cells;
  }
  return a;
}

double overlap_area_on_tier(const Netlist& netlist, const Placement3D& placement,
                            int tier) {
  std::vector<Rect> boxes;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id) || placement.tier[ci] != tier) continue;
    const CellType& t = netlist.cell_type(id);
    boxes.push_back({placement.xy[ci].x, placement.xy[ci].y,
                     placement.xy[ci].x + t.width, placement.xy[ci].y + t.height});
  }
  std::sort(boxes.begin(), boxes.end(),
            [](const Rect& a, const Rect& b) { return a.xlo < b.xlo; });
  double total = 0.0;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      if (boxes[j].xlo >= boxes[i].xhi) break;
      total += boxes[i].overlap_area(boxes[j]);
    }
  }
  return total;
}

}  // namespace dco3d
