#pragma once
// Row-based legalization (Tetris-style greedy) per die: snaps standard cells
// to placement rows, removes overlaps, and respects macro blockages. The
// legalize.displacement_threshold knob of Table I bounds how far from its
// global-placement location a cell may be moved vertically.

#include "netlist/netlist.hpp"
#include "place/params.hpp"

namespace dco3d {

struct LegalizeStats {
  double total_displacement = 0.0;  // um, summed over legalized cells
  double max_displacement = 0.0;
  std::size_t cells = 0;
};

/// Legalize all movable cells of `tier` in place. Cells are processed in
/// ascending x and packed into rows; each cell considers rows within
/// (4 + displacement_threshold) rows of its desired y and picks the least
/// total displacement. Fixed cells (macros) become blocked intervals.
LegalizeStats legalize_tier(const Netlist& netlist, Placement3D& placement,
                            int tier, const PlacementParams& params);

/// Legalize both tiers; returns combined stats.
LegalizeStats legalize_all(const Netlist& netlist, Placement3D& placement,
                           const PlacementParams& params);

/// Total pairwise overlap area between movable cells on a tier (0 when
/// perfectly legal); diagnostic used by tests and the density bench.
double overlap_area_on_tier(const Netlist& netlist, const Placement3D& placement,
                            int tier);

}  // namespace dco3d
