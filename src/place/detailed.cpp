#include "place/detailed.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <vector>

namespace dco3d {

namespace {

/// HPWL of all nets incident to one or two cells, given hypothetical x
/// overrides. Only x matters for the moves in this pass (rows fix y).
double incident_hpwl(const Netlist& nl, const Placement3D& pl,
                     std::span<const NetId> nets, CellId a, double ax,
                     CellId b = -1, double bx = 0.0) {
  double total = 0.0;
  for (NetId ni : nets) {
    double xlo = 1e300, xhi = -1e300, ylo = 1e300, yhi = -1e300;
    for (const Pin& p : nl.net_pins(ni)) {
      double px = pl.xy[static_cast<std::size_t>(p.cell)].x;
      if (p.cell == a) px = ax;
      if (p.cell == b) px = bx;
      px += p.offset.x;
      const double py = pl.xy[static_cast<std::size_t>(p.cell)].y + p.offset.y;
      xlo = std::min(xlo, px);
      xhi = std::max(xhi, px);
      ylo = std::min(ylo, py);
      yhi = std::max(yhi, py);
    }
    total += ((xhi - xlo) + (yhi - ylo)) * nl.net_weight(ni);
  }
  return total;
}

/// Merged, deduplicated incident-net list of one or two cells.
std::vector<NetId> merged_nets(const Netlist& nl, CellId a, CellId b = -1) {
  const auto na = nl.cell_nets(a);
  std::vector<NetId> nets(na.begin(), na.end());
  if (b >= 0) {
    const auto nb = nl.cell_nets(b);
    nets.insert(nets.end(), nb.begin(), nb.end());
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

/// Median of the x coordinates a cell's nets "want" it at — the optimal
/// position of a single cell under HPWL (half-perimeter is convex piecewise
/// linear; the median of the other-pin extents minimizes it; we use the
/// simpler median-of-other-pins which is within the optimal plateau for
/// typical fanouts).
double desired_x(const Netlist& nl, const Placement3D& pl, CellId c) {
  std::vector<double> xs;
  for (NetId ni : nl.cell_nets(c)) {
    for (const Pin& p : nl.net_pins(ni)) {
      if (p.cell == c) continue;
      xs.push_back(pl.xy[static_cast<std::size_t>(p.cell)].x + p.offset.x);
    }
  }
  if (xs.empty()) return pl.xy[static_cast<std::size_t>(c)].x;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2),
                   xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

DetailedStats detailed_place(const Netlist& netlist, Placement3D& placement,
                             const DetailedConfig& cfg) {
  DetailedStats stats;
  stats.hpwl_before = total_hpwl(netlist, placement);

  // Bucket movable cells into rows per (tier, y).
  std::map<std::pair<int, long long>, std::vector<CellId>> rows;
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id)) continue;
    const auto key = std::make_pair(
        placement.tier[ci],
        static_cast<long long>(std::llround(placement.xy[ci].y * 1e6)));
    rows[key].push_back(id);
  }

  const double right_edge = placement.outline.xhi;
  const double left_edge = placement.outline.xlo;

  for (int pass = 0; pass < cfg.passes; ++pass) {
    bool changed = false;
    for (auto& [key, cells] : rows) {
      std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
        return placement.xy[static_cast<std::size_t>(a)].x <
               placement.xy[static_cast<std::size_t>(b)].x;
      });

      // Slide pass: optimal x within the free interval around each cell.
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellId c = cells[i];
        const auto ci = static_cast<std::size_t>(c);
        const double w = netlist.cell_type(c).width;
        const double lo =
            i == 0 ? left_edge
                   : placement.xy[static_cast<std::size_t>(cells[i - 1])].x +
                         netlist.cell_type(cells[i - 1]).width;
        const double hi =
            (i + 1 == cells.size()
                 ? right_edge
                 : placement.xy[static_cast<std::size_t>(cells[i + 1])].x) -
            w;
        if (hi < lo) continue;  // no slack
        const double target = std::clamp(desired_x(netlist, placement, c), lo, hi);
        if (std::abs(target - placement.xy[ci].x) < 1e-9) continue;
        const auto nets = netlist.cell_nets(c);
        const double before =
            incident_hpwl(netlist, placement, nets, c, placement.xy[ci].x);
        const double after = incident_hpwl(netlist, placement, nets, c, target);
        if (after < before - 1e-12) {
          placement.xy[ci].x = target;
          ++stats.slides;
          changed = true;
        }
      }

      // Swap pass: exchange same-width neighbors when HPWL improves.
      for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
        const CellId a = cells[i], b = cells[i + 1];
        const double wa = netlist.cell_type(a).width;
        const double wb = netlist.cell_type(b).width;
        if (std::abs(wa - wb) > cfg.width_tol) continue;
        const auto ai = static_cast<std::size_t>(a);
        const auto bi = static_cast<std::size_t>(b);
        const auto nets = merged_nets(netlist, a, b);
        const double before = incident_hpwl(netlist, placement, nets, a,
                                            placement.xy[ai].x, b,
                                            placement.xy[bi].x);
        const double after = incident_hpwl(netlist, placement, nets, a,
                                           placement.xy[bi].x, b,
                                           placement.xy[ai].x);
        if (after < before - 1e-12) {
          std::swap(placement.xy[ai].x, placement.xy[bi].x);
          std::swap(cells[i], cells[i + 1]);
          ++stats.swaps;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  stats.hpwl_after = total_hpwl(netlist, placement);
  return stats;
}

}  // namespace dco3d
