#include "place/fm_partitioner.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace dco3d {

std::size_t cut_size(const Netlist& netlist, const std::vector<int>& tiers) {
  std::size_t cut = 0;
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    const auto pins = netlist.net_pins(static_cast<NetId>(ni));
    if (pins.empty()) continue;
    const int t0 = tiers[static_cast<std::size_t>(pins[0].cell)];
    for (std::size_t i = 1; i < pins.size(); ++i) {
      if (tiers[static_cast<std::size_t>(pins[i].cell)] != t0) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

std::vector<int> seed_tiers_checkerboard(const Netlist& netlist,
                                         const Placement3D& placement,
                                         int bins, int num_tiers) {
  std::vector<int> tiers = placement.tier;
  const Rect& ol = placement.outline;

  // Bucket movable cells by bin.
  std::vector<std::vector<CellId>> bucket(static_cast<std::size_t>(bins) * bins);
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id)) continue;
    const Point& p = placement.xy[ci];
    const int bx = std::clamp(static_cast<int>((p.x - ol.xlo) / ol.width() * bins),
                              0, bins - 1);
    const int by = std::clamp(static_cast<int>((p.y - ol.ylo) / ol.height() * bins),
                              0, bins - 1);
    bucket[static_cast<std::size_t>(by) * bins + bx].push_back(id);
  }

  // Within each bin: sort by area descending and deal to the lightest tier
  // (ties to the lowest index) so every tier gets 1/K of the area of every
  // neighborhood.
  std::vector<double> area(static_cast<std::size_t>(num_tiers), 0.0);
  for (auto& cells : bucket) {
    std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
      return netlist.cell_area(a) > netlist.cell_area(b);
    });
    for (CellId id : cells) {
      int t = 0;
      for (int k = 1; k < num_tiers; ++k)
        if (area[static_cast<std::size_t>(k)] < area[static_cast<std::size_t>(t)])
          t = k;
      tiers[static_cast<std::size_t>(id)] = t;
      area[static_cast<std::size_t>(t)] += netlist.cell_area(id);
    }
  }
  return tiers;
}

namespace {

struct FmState {
  const Netlist& nl;
  std::vector<int>& tiers;
  int num_tiers;
  // pins_in[t][ni]: pin count of net ni on tier t.
  std::vector<std::vector<int>> pins_in;
  std::vector<bool> locked;
  std::vector<double> area;
  double total_area = 0.0;

  FmState(const Netlist& netlist, std::vector<int>& t, int k)
      : nl(netlist), tiers(t), num_tiers(k) {
    pins_in.assign(static_cast<std::size_t>(k),
                   std::vector<int>(nl.num_nets(), 0));
    locked.assign(nl.num_cells(), false);
    area.assign(static_cast<std::size_t>(k), 0.0);
    for (std::size_t ni = 0; ni < nl.num_nets(); ++ni) {
      for (const Pin& p : nl.net_pins(static_cast<NetId>(ni)))
        ++pins_in[static_cast<std::size_t>(
            tiers[static_cast<std::size_t>(p.cell)])][ni];
    }
    for (std::size_t ci = 0; ci < nl.num_cells(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      if (!nl.is_movable(id)) continue;
      const double a = nl.cell_area(id);
      area[static_cast<std::size_t>(tiers[ci])] += a;
      total_area += a;
    }
  }

  int pins_of_self(NetId ni, CellId id) const {
    int my_pins = 0;
    for (const Pin& p : nl.net_pins(ni))
      if (p.cell == id) ++my_pins;
    return my_pins;
  }

  /// FM gain of moving a cell from its tier to `to`: cut reduction
  /// (positive = fewer cut nets). A net is cut when its pins occupy two or
  /// more distinct tiers; at K = 2 this reduces to the classic
  /// "+1 uncut, -1 newly-cut" bucket gain, integer-for-integer.
  int gain(CellId id, int to) const {
    const int from = tiers[static_cast<std::size_t>(id)];
    int g = 0;
    for (NetId ni : nl.cell_nets(id)) {
      const int my_pins = pins_of_self(ni, id);
      const auto nidx = static_cast<std::size_t>(ni);
      int occupied_before = 0, occupied_after = 0;
      for (int t = 0; t < num_tiers; ++t) {
        int pins = pins_in[static_cast<std::size_t>(t)][nidx];
        if (pins > 0) ++occupied_before;
        if (t == from) pins -= my_pins;
        if (t == to) pins += my_pins;
        if (pins > 0) ++occupied_after;
      }
      if (occupied_before >= 2) ++g;
      if (occupied_after >= 2) --g;
    }
    return g;
  }

  /// Best (gain, target) over the K-1 candidate tiers; ties keep the lowest
  /// target index. At K = 2 the single candidate is 1 - from.
  std::pair<int, int> best_gain(CellId id) const {
    const int from = tiers[static_cast<std::size_t>(id)];
    int best_g = 0, best_to = -1;
    for (int to = 0; to < num_tiers; ++to) {
      if (to == from) continue;
      const int g = gain(id, to);
      if (best_to < 0 || g > best_g) {
        best_g = g;
        best_to = to;
      }
    }
    return {best_g, best_to};
  }

  void move(CellId id, int to) {
    const auto ci = static_cast<std::size_t>(id);
    const int from = tiers[ci];
    for (NetId ni : nl.cell_nets(id)) {
      const int my_pins = pins_of_self(ni, id);
      pins_in[static_cast<std::size_t>(from)][static_cast<std::size_t>(ni)] -=
          my_pins;
      pins_in[static_cast<std::size_t>(to)][static_cast<std::size_t>(ni)] +=
          my_pins;
    }
    tiers[ci] = to;
    const double a = nl.cell_area(id);
    area[static_cast<std::size_t>(from)] -= a;
    area[static_cast<std::size_t>(to)] += a;
  }

  bool balanced_after(CellId id, int to, double tol) const {
    const int from = tiers[static_cast<std::size_t>(id)];
    const double a = nl.cell_area(id);
    const double from_area = area[static_cast<std::size_t>(from)] - a;
    const double to_area = area[static_cast<std::size_t>(to)] + a;
    if (num_tiers == 2)
      return std::abs(from_area - to_area) <= tol * total_area;
    // K > 2: both endpoints of the move must stay within 1/K +- tol of the
    // total (the untouched tiers cannot drift).
    const double target = total_area / static_cast<double>(num_tiers);
    const double slack = tol * total_area;
    return to_area <= target + slack && from_area >= target - slack;
  }
};

}  // namespace

std::size_t fm_refine(const Netlist& netlist, std::vector<int>& tiers,
                      const FmConfig& cfg, int num_tiers) {
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    FmState st(netlist, tiers, num_tiers);

    // Lazy max-heap of (gain, cell, target); entries are revalidated on pop.
    // The target tier rides along so the K-way move is replayable; at K = 2
    // it is always the opposite tier and never influences the heap order
    // (comparison only reaches it for duplicate (gain, cell) entries).
    using Entry = std::tuple<int, CellId, int>;
    std::priority_queue<Entry> heap;
    std::vector<int> cached_gain(netlist.num_cells(), 0);
    std::vector<int> cached_to(netlist.num_cells(), -1);
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      if (!netlist.is_movable(id)) continue;
      const auto [g, to] = st.best_gain(id);
      cached_gain[ci] = g;
      cached_to[ci] = to;
      heap.push({g, id, to});
    }

    std::vector<std::pair<CellId, int>> moved;  // (cell, tier it came from)
    std::vector<int> gain_seq;
    while (!heap.empty()) {
      auto [g, id, to] = heap.top();
      heap.pop();
      const auto ci = static_cast<std::size_t>(id);
      if (st.locked[ci]) continue;
      if (g != cached_gain[ci] || to != cached_to[ci]) continue;  // stale
      const auto [fresh, fresh_to] = st.best_gain(id);
      if (fresh != g || fresh_to != to) {
        cached_gain[ci] = fresh;
        cached_to[ci] = fresh_to;
        heap.push({fresh, id, fresh_to});
        continue;
      }
      if (!st.balanced_after(id, to, cfg.balance_tol)) continue;

      const int from = tiers[ci];
      st.move(id, to);
      st.locked[ci] = true;
      moved.push_back({id, from});
      gain_seq.push_back(g);
      // Refresh gains of neighbors on touched nets (stored pin order is the
      // legacy driver-then-sinks visit order).
      for (NetId ni : netlist.cell_nets(id)) {
        for (const Pin& p : netlist.net_pins(ni)) {
          const CellId c = p.cell;
          const auto cj = static_cast<std::size_t>(c);
          if (st.locked[cj] || !netlist.is_movable(c)) continue;
          const auto [ng, nto] = st.best_gain(c);
          if (ng != cached_gain[cj] || nto != cached_to[cj]) {
            cached_gain[cj] = ng;
            cached_to[cj] = nto;
            heap.push({ng, c, nto});
          }
        }
      }
    }

    // Keep the best prefix of the move sequence; roll back the rest.
    int best_sum = 0, run = 0;
    std::size_t best_len = 0;
    for (std::size_t i = 0; i < gain_seq.size(); ++i) {
      run += gain_seq[i];
      if (run > best_sum) {
        best_sum = run;
        best_len = i + 1;
      }
    }
    for (std::size_t i = moved.size(); i > best_len; --i)
      st.move(moved[i - 1].first, moved[i - 1].second);
    if (best_sum <= 0) break;  // converged
  }
  return cut_size(netlist, tiers);
}

std::size_t partition_tiers(const Netlist& netlist, Placement3D& placement,
                            const FmConfig& cfg) {
  std::vector<int> tiers = seed_tiers_checkerboard(netlist, placement, cfg.bins,
                                                   placement.num_tiers);
  const std::size_t cut = fm_refine(netlist, tiers, cfg, placement.num_tiers);
  placement.tier = std::move(tiers);
  return cut;
}

}  // namespace dco3d
