#include "place/fm_partitioner.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace dco3d {

std::size_t cut_size(const Netlist& netlist, const std::vector<int>& tiers) {
  std::size_t cut = 0;
  for (const Net& net : netlist.nets()) {
    const int t0 = tiers[static_cast<std::size_t>(net.driver.cell)];
    for (const PinRef& s : net.sinks) {
      if (tiers[static_cast<std::size_t>(s.cell)] != t0) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

std::vector<int> seed_tiers_checkerboard(const Netlist& netlist,
                                         const Placement3D& placement,
                                         int bins) {
  std::vector<int> tiers = placement.tier;
  const Rect& ol = placement.outline;

  // Bucket movable cells by bin.
  std::vector<std::vector<CellId>> bucket(static_cast<std::size_t>(bins) * bins);
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_movable(id)) continue;
    const Point& p = placement.xy[ci];
    const int bx = std::clamp(static_cast<int>((p.x - ol.xlo) / ol.width() * bins),
                              0, bins - 1);
    const int by = std::clamp(static_cast<int>((p.y - ol.ylo) / ol.height() * bins),
                              0, bins - 1);
    bucket[static_cast<std::size_t>(by) * bins + bx].push_back(id);
  }

  // Within each bin: sort by area descending and deal to the lighter side so
  // both tiers get half the area of every neighborhood.
  double area[2] = {0.0, 0.0};
  for (auto& cells : bucket) {
    std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
      return netlist.cell_area(a) > netlist.cell_area(b);
    });
    for (CellId id : cells) {
      const int t = area[0] <= area[1] ? 0 : 1;
      tiers[static_cast<std::size_t>(id)] = t;
      area[t] += netlist.cell_area(id);
    }
  }
  return tiers;
}

namespace {

struct FmState {
  const Netlist& nl;
  std::vector<int>& tiers;
  std::vector<int> pins_in[2];  // per net: pin count on each tier
  std::vector<bool> locked;
  double area[2] = {0.0, 0.0};
  double total_area = 0.0;

  explicit FmState(const Netlist& netlist, std::vector<int>& t)
      : nl(netlist), tiers(t) {
    pins_in[0].assign(nl.num_nets(), 0);
    pins_in[1].assign(nl.num_nets(), 0);
    locked.assign(nl.num_cells(), false);
    for (std::size_t ni = 0; ni < nl.num_nets(); ++ni) {
      const Net& net = nl.net(static_cast<NetId>(ni));
      auto count = [&](CellId c) { ++pins_in[tiers[static_cast<std::size_t>(c)]][ni]; };
      count(net.driver.cell);
      for (const PinRef& s : net.sinks) count(s.cell);
    }
    for (std::size_t ci = 0; ci < nl.num_cells(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      if (!nl.is_movable(id)) continue;
      const double a = nl.cell_area(id);
      area[tiers[ci]] += a;
      total_area += a;
    }
  }

  /// FM gain of moving a cell: cut reduction (positive = fewer cut nets).
  int gain(CellId id) const {
    const int from = tiers[static_cast<std::size_t>(id)];
    const int to = 1 - from;
    int g = 0;
    for (NetId ni : nl.cell_nets()[static_cast<std::size_t>(id)]) {
      const Net& net = nl.net(ni);
      int my_pins = 0;
      auto count_self = [&](CellId c) {
        if (c == id) ++my_pins;
      };
      count_self(net.driver.cell);
      for (const PinRef& s : net.sinks) count_self(s.cell);
      const int from_pins = pins_in[from][static_cast<std::size_t>(ni)];
      const int to_pins = pins_in[to][static_cast<std::size_t>(ni)];
      if (from_pins == my_pins && to_pins > 0) ++g;   // net becomes uncut
      if (to_pins == 0) --g;                           // net becomes cut
    }
    return g;
  }

  void move(CellId id) {
    const auto ci = static_cast<std::size_t>(id);
    const int from = tiers[ci];
    const int to = 1 - from;
    for (NetId ni : nl.cell_nets()[ci]) {
      const Net& net = nl.net(ni);
      int my_pins = 0;
      auto count_self = [&](CellId c) {
        if (c == id) ++my_pins;
      };
      count_self(net.driver.cell);
      for (const PinRef& s : net.sinks) count_self(s.cell);
      pins_in[from][static_cast<std::size_t>(ni)] -= my_pins;
      pins_in[to][static_cast<std::size_t>(ni)] += my_pins;
    }
    tiers[ci] = to;
    const double a = nl.cell_area(id);
    area[from] -= a;
    area[to] += a;
  }

  bool balanced_after(CellId id, double tol) const {
    const int from = tiers[static_cast<std::size_t>(id)];
    const double a = nl.cell_area(id);
    const double from_area = area[from] - a;
    const double to_area = area[1 - from] + a;
    return std::abs(from_area - to_area) <= tol * total_area;
  }
};

}  // namespace

std::size_t fm_refine(const Netlist& netlist, std::vector<int>& tiers,
                      const FmConfig& cfg) {
  netlist.cell_nets();  // build incidence cache
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    FmState st(netlist, tiers);

    // Lazy max-heap of (gain, cell); entries are revalidated on pop.
    using Entry = std::pair<int, CellId>;
    std::priority_queue<Entry> heap;
    std::vector<int> cached_gain(netlist.num_cells(), 0);
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
      const auto id = static_cast<CellId>(ci);
      if (!netlist.is_movable(id)) continue;
      cached_gain[ci] = st.gain(id);
      heap.push({cached_gain[ci], id});
    }

    std::vector<CellId> moved;
    std::vector<int> gain_seq;
    while (!heap.empty()) {
      auto [g, id] = heap.top();
      heap.pop();
      const auto ci = static_cast<std::size_t>(id);
      if (st.locked[ci]) continue;
      if (g != cached_gain[ci]) continue;  // stale entry
      const int fresh = st.gain(id);
      if (fresh != g) {
        cached_gain[ci] = fresh;
        heap.push({fresh, id});
        continue;
      }
      if (!st.balanced_after(id, cfg.balance_tol)) continue;

      st.move(id);
      st.locked[ci] = true;
      moved.push_back(id);
      gain_seq.push_back(g);
      // Refresh gains of neighbors on touched nets.
      for (NetId ni : netlist.cell_nets()[ci]) {
        const Net& net = netlist.net(ni);
        auto refresh = [&](CellId c) {
          const auto cj = static_cast<std::size_t>(c);
          if (st.locked[cj] || !netlist.is_movable(c)) return;
          const int ng = st.gain(c);
          if (ng != cached_gain[cj]) {
            cached_gain[cj] = ng;
            heap.push({ng, c});
          }
        };
        refresh(net.driver.cell);
        for (const PinRef& s : net.sinks) refresh(s.cell);
      }
    }

    // Keep the best prefix of the move sequence; roll back the rest.
    int best_sum = 0, run = 0;
    std::size_t best_len = 0;
    for (std::size_t i = 0; i < gain_seq.size(); ++i) {
      run += gain_seq[i];
      if (run > best_sum) {
        best_sum = run;
        best_len = i + 1;
      }
    }
    for (std::size_t i = moved.size(); i > best_len; --i) st.move(moved[i - 1]);
    if (best_sum <= 0) break;  // converged
  }
  return cut_size(netlist, tiers);
}

std::size_t partition_tiers(const Netlist& netlist, Placement3D& placement,
                            const FmConfig& cfg) {
  std::vector<int> tiers = seed_tiers_checkerboard(netlist, placement, cfg.bins);
  const std::size_t cut = fm_refine(netlist, tiers, cfg);
  placement.tier = std::move(tiers);
  return cut;
}

}  // namespace dco3d
