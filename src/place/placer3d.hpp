#pragma once
// Pseudo-3D global placement driver — our substitute for the ICC2-based
// Pin-3D placement step. Pipeline:
//
//   floorplan (die outline, IO ring, macro corners)
//     -> combined 2D analytic placement with both tiers sharing the outline
//        (the "shrunk-2D" trick: movable areas are halved so two tiers fit)
//     -> bin-based checkerboard tier seeding + FM min-cut refinement
//     -> per-die analytic refinement with spreading
//     -> row legalization per die
//
// Every Table-I knob (PlacementParams) steers the matching stage; sampling
// the knobs yields the diverse layout dataset of §III-A.

#include "grid/gcell_grid.hpp"
#include "netlist/netlist.hpp"
#include "place/params.hpp"
#include "util/rng.hpp"

namespace dco3d {

struct FloorplanConfig {
  double utilization = 0.7;   // per-die target utilization
  double aspect = 1.0;        // width/height
};

/// Compute the shared die outline and place fixed cells: IO pads around the
/// boundary (round-robin across tiers) and macros near the corners. Returns
/// an initialized Placement3D with movable cells at the center and
/// num_tiers recorded on the placement.
Placement3D floorplan(const Netlist& netlist, const FloorplanConfig& cfg, Rng& rng,
                      int num_tiers = 2);

/// Full pseudo-3D placement over `num_tiers` stacked dies. Deterministic
/// for a given (netlist, params, seed, num_tiers); num_tiers = 2 reproduces
/// the classic two-die flow bit-for-bit. `legalized` controls whether the
/// final row-legalization runs (the DCO loop operates on the global
/// placement *before* legalization).
Placement3D place_pseudo3d(const Netlist& netlist, const PlacementParams& params,
                           std::uint64_t seed, bool legalized = true,
                           int num_tiers = 2);

/// A GCell grid covering the placement outline with tiles sized so that the
/// map resolution is `nx` x `ny`.
GCellGrid make_grid(const Placement3D& placement, int nx, int ny);

}  // namespace dco3d
