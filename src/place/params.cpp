#include "place/params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dco3d {

PlacementParams PlacementParams::sample(Rng& rng) {
  PlacementParams p;
  p.pin_density_aware = rng.bernoulli(0.5);
  p.target_routing_density = rng.uniform();
  p.adv_node_cong_max_util = rng.uniform();
  p.congestion_driven_max_util = rng.uniform();
  p.cong_restruct_effort = static_cast<int>(rng.uniform_int(0, 4));
  p.cong_restruct_iterations = static_cast<int>(rng.uniform_int(0, 10));
  p.enhanced_low_power_effort = static_cast<int>(rng.uniform_int(0, 4));
  p.low_power_placement = rng.bernoulli(0.5);
  p.max_density = rng.uniform();
  p.displacement_threshold = static_cast<int>(rng.uniform_int(0, 10));
  p.two_pass = rng.bernoulli(0.5);
  p.global_route_based = rng.bernoulli(0.5);
  p.enable_ccd = rng.bernoulli(0.5);
  p.initial_place_effort = static_cast<int>(rng.uniform_int(0, 2));
  p.final_place_effort = static_cast<int>(rng.uniform_int(0, 2));
  p.enable_irap = rng.bernoulli(0.5);
  return p;
}

PlacementParams PlacementParams::congestion_focused() {
  PlacementParams p;
  p.pin_density_aware = true;
  p.target_routing_density = 0.6;
  p.adv_node_cong_max_util = 0.6;
  p.congestion_driven_max_util = 0.6;
  p.cong_restruct_effort = 4;
  p.cong_restruct_iterations = 10;
  p.max_density = 0.6;
  p.initial_place_effort = 2;
  p.final_place_effort = 2;
  p.enable_irap = true;
  return p;
}

std::array<double, 16> PlacementParams::encode() const {
  return {
      pin_density_aware ? 1.0 : 0.0,
      target_routing_density,
      adv_node_cong_max_util,
      congestion_driven_max_util,
      cong_restruct_effort / 4.0,
      cong_restruct_iterations / 10.0,
      enhanced_low_power_effort / 4.0,
      low_power_placement ? 1.0 : 0.0,
      max_density,
      displacement_threshold / 10.0,
      two_pass ? 1.0 : 0.0,
      global_route_based ? 1.0 : 0.0,
      enable_ccd ? 1.0 : 0.0,
      initial_place_effort / 2.0,
      final_place_effort / 2.0,
      enable_irap ? 1.0 : 0.0,
  };
}

PlacementParams PlacementParams::decode(const std::array<double, 16>& v) {
  auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };
  auto to_int = [&](double x, int hi) {
    return static_cast<int>(std::lround(clamp01(x) * hi));
  };
  PlacementParams p;
  p.pin_density_aware = v[0] >= 0.5;
  p.target_routing_density = clamp01(v[1]);
  p.adv_node_cong_max_util = clamp01(v[2]);
  p.congestion_driven_max_util = clamp01(v[3]);
  p.cong_restruct_effort = to_int(v[4], 4);
  p.cong_restruct_iterations = to_int(v[5], 10);
  p.enhanced_low_power_effort = to_int(v[6], 4);
  p.low_power_placement = v[7] >= 0.5;
  p.max_density = clamp01(v[8]);
  p.displacement_threshold = to_int(v[9], 10);
  p.two_pass = v[10] >= 0.5;
  p.global_route_based = v[11] >= 0.5;
  p.enable_ccd = v[12] >= 0.5;
  p.initial_place_effort = to_int(v[13], 2);
  p.final_place_effort = to_int(v[14], 2);
  p.enable_irap = v[15] >= 0.5;
  return p;
}

std::string PlacementParams::summary() const {
  std::ostringstream ss;
  ss << "dens=" << max_density << " cong_eff=" << cong_restruct_effort
     << " cong_it=" << cong_restruct_iterations
     << " route_dens=" << target_routing_density
     << " pda=" << pin_density_aware << " irap=" << enable_irap
     << " eff=" << initial_place_effort << "/" << final_place_effort;
  return ss.str();
}

const std::array<ParamInfo, 16>& param_table() {
  static const std::array<ParamInfo, 16> t = {{
      {"coarse.pin_density_aware", "bool"},
      {"coarse.target_routing_density", "float"},
      {"coarse.adv_node_cong_max_util", "float"},
      {"coarse.congestion_driven_max_util", "float"},
      {"coarse.cong_restruct_effort", "enum"},
      {"coarse.cong_restruct_iterations", "int"},
      {"coarse.enhanced_low_power_effort", "enum"},
      {"coarse.low_power_placement", "bool"},
      {"coarse.max_density", "float"},
      {"legalize.displacement_threshold", "int"},
      {"initial_place.two_pass", "bool"},
      {"initial_drc.global_route_based", "bool"},
      {"flow.enable_ccd", "bool"},
      {"initial_place.effort", "enum"},
      {"final_place.effort", "enum"},
      {"flow.enable_irap", "bool"},
  }};
  return t;
}

}  // namespace dco3d
