#include "timing/hold.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <queue>

namespace dco3d {

HoldResult run_hold_check(const Netlist& netlist, const Placement3D& placement,
                          const TimingConfig& cfg, const HoldConfig& hold_cfg,
                          const std::vector<double>* clk_skew_ps) {
  const std::size_t n_cells = netlist.num_cells();
  const std::size_t n_nets = netlist.num_nets();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  HoldResult res;
  res.whs_ps = kInf;
  res.endpoint_slack.assign(n_cells, kInf);

  auto skew = [&](CellId c) -> double {
    if (!clk_skew_ps || clk_skew_ps->empty()) return 0.0;
    return (*clk_skew_ps)[static_cast<std::size_t>(c)];
  };
  auto is_launch = [&](CellId c) {
    return netlist.is_sequential(c) || netlist.is_io(c) || netlist.is_macro(c);
  };

  // Driving net per cell and per-net loads (nominal; fast corner scales the
  // cell delay, not the topology).
  std::vector<NetId> out_net(n_cells, -1);
  for (std::size_t ni = 0; ni < n_nets; ++ni)
    out_net[static_cast<std::size_t>(netlist.net_driver(static_cast<NetId>(ni)).cell)] =
        static_cast<NetId>(ni);
  std::vector<double> net_load(n_nets, 0.0);
  for (std::size_t ni = 0; ni < n_nets; ++ni)
    net_load[ni] = net_load_ff(netlist, placement, static_cast<NetId>(ni), cfg);

  auto wire_delay = [&](const Pin& driver, const Pin& sink) {
    const double len = manhattan(placement.pin_position(driver),
                                 placement.pin_position(sink));
    double d = 0.5 * (cfg.wire_res_per_um * len) * (cfg.wire_cap_per_um * len) * 1e-3;
    const int dt = std::abs(placement.tier[static_cast<std::size_t>(driver.cell)] -
                            placement.tier[static_cast<std::size_t>(sink.cell)]);
    if (dt > 0) d += cfg.via_delay_ps * static_cast<double>(dt);
    return d * hold_cfg.min_cell_factor;
  };

  // Min-arrival propagation (Kahn, same arc structure as setup STA).
  std::vector<double> arrival(n_cells, kInf);
  std::vector<int> indeg(n_cells, 0);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const auto id = static_cast<NetId>(ni);
    if (netlist.net_is_clock(id)) continue;
    for (const Pin& p : netlist.net_pins(id))
      if (p.dir == PinDir::kSink && !is_launch(p.cell))
        ++indeg[static_cast<std::size_t>(p.cell)];
  }
  std::queue<CellId> ready;
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (is_launch(id)) {
      arrival[ci] = netlist.is_sequential(id)
                        ? skew(id) + cfg.clk_to_q_ps * hold_cfg.min_cell_factor
                        : 0.0;
      ready.push(id);
    } else if (indeg[ci] == 0) {
      arrival[ci] = 0.0;
      ready.push(id);
    }
  }

  std::vector<bool> processed(n_cells, false);
  std::vector<double> endpoint_arrival(n_cells, kInf);
  auto process = [&](CellId id) {
    const auto ci = static_cast<std::size_t>(id);
    if (processed[ci]) return;
    processed[ci] = true;
    const CellType& t = netlist.cell_type(id);
    const NetId on = out_net[ci];
    const double load = on >= 0 ? net_load[static_cast<std::size_t>(on)] : 0.0;
    if (!is_launch(id))
      arrival[ci] += (t.intrinsic_delay + t.drive_res * load) *
                     hold_cfg.min_cell_factor;
    if (on < 0) return;
    if (netlist.net_is_clock(on)) return;
    const Pin& driver = netlist.net_driver(on);
    for (const Pin& s : netlist.net_pins(on)) {
      if (s.dir != PinDir::kSink) continue;
      const auto si = static_cast<std::size_t>(s.cell);
      const double at = arrival[ci] + wire_delay(driver, s);
      if (is_launch(s.cell)) {
        endpoint_arrival[si] = std::min(endpoint_arrival[si], at);
      } else {
        arrival[si] = std::min(arrival[si] == kInf ? at : arrival[si], at);
        if (--indeg[si] == 0) ready.push(s.cell);
      }
    }
  };
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    process(id);
  }
  for (std::size_t ci = 0; ci < n_cells; ++ci)
    if (!processed[ci]) process(static_cast<CellId>(ci));

  // Hold check at each capture register: earliest data arrival must exceed
  // the capture clock edge (skew) plus the hold requirement.
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist.is_sequential(id) && !netlist.is_macro(id)) continue;
    if (endpoint_arrival[ci] == kInf) continue;  // no data fanin
    const double slack =
        endpoint_arrival[ci] - (skew(id) + hold_cfg.hold_time_ps);
    res.endpoint_slack[ci] = slack;
    ++res.endpoints;
    if (slack < 0.0) {
      ++res.violating_endpoints;
      res.ths_ps += slack;
    }
    res.whs_ps = std::min(res.whs_ps, slack);
  }
  if (res.endpoints == 0) res.whs_ps = 0.0;
  return res;
}

}  // namespace dco3d
