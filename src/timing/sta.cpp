#include "timing/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace dco3d {

double net_load_ff(const Netlist& netlist, const Placement3D& placement,
                   NetId net_id, const TimingConfig& cfg, double length_scale) {
  double load = 0.0;
  for (const Pin& p : netlist.net_pins(net_id)) {
    if (p.dir != PinDir::kSink) continue;
    const CellType& t = netlist.cell_type(p.cell);
    load += t.input_cap;
  }
  load += net_hpwl(netlist, net_id, placement) * length_scale * cfg.wire_cap_per_um;
  if (is_3d_net(netlist, net_id, placement)) load += cfg.via_cap_ff;
  return load;
}

namespace {

/// Cell-level timing node state.
struct NodeState {
  double arrival = 0.0;    // at cell output, ps
  double required = 0.0;   // at cell output, ps
  double in_slew = 0.0;    // worst input slew, ps
  double out_slew = 0.0;   // output slew, ps
  double delay = 0.0;      // input-to-output delay incl. slew adder, ps
  bool is_source = false;  // register / input pad / macro output
  bool processed = false;
};

}  // namespace

TimingResult run_sta(const Netlist& netlist, const Placement3D& placement,
                     const TimingConfig& cfg,
                     const std::vector<double>* clk_skew_ps,
                     const std::vector<double>* net_length_scale) {
  const std::size_t n_cells = netlist.num_cells();
  const std::size_t n_nets = netlist.num_nets();
  TimingResult res;
  res.cell_slack.assign(n_cells, cfg.clock_period_ps);
  res.cell_arrival.assign(n_cells, 0.0);
  res.cell_out_slew.assign(n_cells, cfg.base_slew_ps);
  res.cell_in_slew.assign(n_cells, cfg.base_slew_ps);
  res.net_switch_mw.assign(n_nets, 0.0);

  auto skew = [&](CellId c) -> double {
    if (!clk_skew_ps || clk_skew_ps->empty()) return 0.0;
    return (*clk_skew_ps)[static_cast<std::size_t>(c)];
  };

  // Map: driving net of each cell (at most one output net in our model).
  std::vector<NetId> out_net(n_cells, -1);
  for (std::size_t ni = 0; ni < n_nets; ++ni)
    out_net[static_cast<std::size_t>(netlist.net_driver(static_cast<NetId>(ni)).cell)] =
        static_cast<NetId>(ni);

  // Precompute per-net load, per-sink wire delay, and driver delay pieces.
  auto scale_of = [&](std::size_t ni) {
    if (!net_length_scale || net_length_scale->empty()) return 1.0;
    return std::max((*net_length_scale)[ni], 1.0);
  };
  std::vector<double> net_load(n_nets, 0.0);
  for (std::size_t ni = 0; ni < n_nets; ++ni)
    net_load[ni] =
        net_load_ff(netlist, placement, static_cast<NetId>(ni), cfg, scale_of(ni));

  std::vector<NodeState> node(n_cells);
  auto is_launch = [&](CellId c) {
    return netlist.is_sequential(c) || netlist.is_io(c) ||
           netlist.is_macro(c);
  };

  // In-degrees over combinational propagation: an arc driver->sink exists for
  // every net sink; sinks that are launch points terminate propagation.
  std::vector<int> indeg(n_cells, 0);
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const auto id = static_cast<NetId>(ni);
    if (netlist.net_is_clock(id)) continue;
    for (const Pin& p : netlist.net_pins(id)) {
      if (p.dir != PinDir::kSink) continue;
      if (!is_launch(p.cell)) ++indeg[static_cast<std::size_t>(p.cell)];
    }
  }

  std::queue<CellId> ready;
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (is_launch(id)) {
      node[ci].is_source = true;
      const CellType& t = netlist.cell_type(id);
      // Launch: clock arrival + clk->q (registers) or boundary arrival 0
      // (pads) or macro clk->out.
      if (netlist.is_sequential(id))
        node[ci].arrival = skew(id) + cfg.clk_to_q_ps;
      else if (netlist.is_macro(id))
        node[ci].arrival = skew(id) + t.intrinsic_delay;
      else
        node[ci].arrival = 0.0;
      node[ci].in_slew = cfg.base_slew_ps;
      ready.push(id);
    } else if (indeg[ci] == 0) {
      ready.push(id);  // dangling combinational cell
    }
  }

  // Process a cell: finalize its output arrival/slew from its inputs, then
  // push arrivals to its sinks.
  auto wire_delay = [&](const Pin& driver, const Pin& sink, std::size_t ni) {
    const Point a = placement.pin_position(driver);
    const Point b = placement.pin_position(sink);
    const double len = manhattan(a, b) * scale_of(ni);
    const double elmore =
        0.5 * (cfg.wire_res_per_um * len) * (cfg.wire_cap_per_um * len) * 1e-3;
    double d = elmore;
    const int dt = std::abs(placement.tier[static_cast<std::size_t>(driver.cell)] -
                            placement.tier[static_cast<std::size_t>(sink.cell)]);
    if (dt > 0) d += cfg.via_delay_ps * static_cast<double>(dt);
    return d;
  };

  std::vector<CellId> proc_order;
  proc_order.reserve(n_cells);
  auto process = [&](CellId id) {
    const auto ci = static_cast<std::size_t>(id);
    NodeState& nd = node[ci];
    if (nd.processed) return;
    nd.processed = true;
    proc_order.push_back(id);
    const CellType& t = netlist.cell_type(id);
    const NetId on = out_net[ci];
    const double load = on >= 0 ? net_load[static_cast<std::size_t>(on)] : 0.0;
    if (!nd.is_source) {
      nd.delay = t.intrinsic_delay + t.drive_res * load +
                 cfg.slew_impact * nd.in_slew;
      nd.arrival += nd.delay;
    } else {
      // Sources still see their drive: pads/registers drive their net.
      nd.arrival += t.drive_res * load * (netlist.is_io(id) ? 0.5 : 1.0);
    }
    nd.out_slew = cfg.base_slew_ps + 0.08 * t.drive_res * load;
    res.cell_arrival[ci] = nd.arrival;
    res.cell_out_slew[ci] = nd.out_slew;
    res.cell_in_slew[ci] = nd.in_slew;
    if (on < 0) return;
    if (netlist.net_is_clock(on)) return;  // clock arcs are handled via CTS skew
    const Pin& driver = netlist.net_driver(on);
    for (const Pin& s : netlist.net_pins(on)) {
      if (s.dir != PinDir::kSink) continue;
      const auto si = static_cast<std::size_t>(s.cell);
      const double at = nd.arrival + wire_delay(driver, s, static_cast<std::size_t>(on));
      const double slew_in = nd.out_slew + 0.01 * manhattan(
          placement.pin_position(driver), placement.pin_position(s));
      NodeState& sn = node[si];
      if (!sn.is_source) {
        sn.arrival = std::max(sn.arrival, at);
        sn.in_slew = std::max(sn.in_slew, slew_in);
        if (--indeg[si] == 0) ready.push(s.cell);
      }
      // Arrivals at launch-point inputs (FF D pins, macro inputs, output
      // pads) are captured below in the endpoint sweep via sink_arrival.
    }
  };

  // Track endpoint arrivals separately (input side of capture points).
  std::vector<double> endpoint_arrival(n_cells, 0.0);
  std::vector<double> endpoint_slew(n_cells, cfg.base_slew_ps);

  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    process(id);
  }
  // Cycle fallback: process leftovers in id order with whatever arrivals
  // accumulated (broadcast-style back edges can form rare cycles).
  for (std::size_t ci = 0; ci < n_cells; ++ci)
    if (!node[ci].processed) process(static_cast<CellId>(ci));

  // Arrivals may receive late pushes from cycle-fallback cells after a node
  // was recorded; re-snapshot them so downstream consumers (path reports)
  // see the same values the endpoint sweep uses.
  for (std::size_t ci = 0; ci < n_cells; ++ci)
    res.cell_arrival[ci] = node[ci].arrival;

  // Endpoint sweep: recompute arrivals at capture pins now that all drivers
  // are final.
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const auto id = static_cast<NetId>(ni);
    if (netlist.net_is_clock(id)) continue;
    const Pin& driver = netlist.net_driver(id);
    const NodeState& dn = node[static_cast<std::size_t>(driver.cell)];
    for (const Pin& s : netlist.net_pins(id)) {
      if (s.dir != PinDir::kSink) continue;
      const auto si = static_cast<std::size_t>(s.cell);
      if (!node[si].is_source) continue;  // combinational sink, not endpoint
      const double at = dn.arrival + wire_delay(driver, s, ni);
      endpoint_arrival[si] = std::max(endpoint_arrival[si], at);
      endpoint_slew[si] = std::max(
          endpoint_slew[si],
          dn.out_slew + 0.01 * manhattan(placement.pin_position(driver),
                                         placement.pin_position(s)));
    }
  }

  // Endpoint slacks. WNS is the minimum endpoint slack (may be positive).
  res.wns_ps = std::numeric_limits<double>::infinity();
  std::vector<double> endpoint_slack(n_cells, cfg.clock_period_ps);
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!node[ci].is_source) continue;
    double required;
    if (netlist.is_sequential(id) || netlist.is_macro(id))
      required = cfg.clock_period_ps + skew(id) - cfg.setup_ps;
    else if (netlist.is_io(id))
      required = cfg.clock_period_ps;
    else
      continue;
    // Pads that only drive (input pads) are not endpoints; detect by
    // checking whether anything arrives at them.
    if (netlist.is_io(id) && endpoint_arrival[ci] == 0.0) continue;
    const double slack = required - endpoint_arrival[ci];
    endpoint_slack[ci] = slack;
    ++res.endpoints;
    if (slack < 0.0) {
      ++res.violating_endpoints;
      res.tns_ps += slack;
    }
    res.wns_ps = std::min(res.wns_ps, slack);
  }
  if (res.endpoints == 0) res.wns_ps = 0.0;

  // Backward pass: required time at each cell output -> per-cell slack.
  std::vector<double> req(n_cells, cfg.clock_period_ps * 4.0);
  // Seed endpoints.
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const auto nid = static_cast<NetId>(ni);
    if (netlist.net_is_clock(nid)) continue;
    const Pin& driver = netlist.net_driver(nid);
    for (const Pin& s : netlist.net_pins(nid)) {
      if (s.dir != PinDir::kSink) continue;
      const auto si = static_cast<std::size_t>(s.cell);
      if (!node[si].is_source) continue;
      const auto id = static_cast<CellId>(si);
      double ep_req;
      if (netlist.is_sequential(id) || netlist.is_macro(id))
        ep_req = cfg.clock_period_ps + skew(id) - cfg.setup_ps;
      else if (netlist.is_io(id))
        ep_req = cfg.clock_period_ps;
      else
        continue;
      const auto di = static_cast<std::size_t>(driver.cell);
      req[di] = std::min(req[di], ep_req - wire_delay(driver, s, ni));
    }
  }
  // Relax in reverse topological order (the reverse of the forward
  // processing order); a second sweep absorbs any cycle-fallback cells.
  for (int sweep = 0; sweep < 2; ++sweep) {
    bool changed = false;
    for (auto it = proc_order.rbegin(); it != proc_order.rend(); ++it) {
      const auto si = static_cast<std::size_t>(*it);
      if (node[si].is_source) continue;
      const NetId on = out_net[si];
      if (on < 0) continue;
      if (netlist.net_is_clock(on)) continue;
      const Pin& driver = netlist.net_driver(on);
      // req(si) = min over fanout sinks of (req(sink) - sink delay - wire);
      // visiting cells in reverse forward order guarantees every
      // combinational sink's req is final before its driver is relaxed.
      for (const Pin& s : netlist.net_pins(on)) {
        if (s.dir != PinDir::kSink) continue;
        const auto sj = static_cast<std::size_t>(s.cell);
        if (node[sj].is_source) continue;
        const double cand =
            req[sj] - node[sj].delay -
            wire_delay(driver, s, static_cast<std::size_t>(on));
        if (cand < req[si] - 1e-9) {
          req[si] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (node[ci].is_source && !netlist.is_io(id)) {
      // For registers/macros the interesting slack is the capture-side one.
      res.cell_slack[ci] = endpoint_slack[ci];
    } else {
      res.cell_slack[ci] = req[ci] - node[ci].arrival;
    }
    res.cell_slack[ci] =
        std::clamp(res.cell_slack[ci], -4.0 * cfg.clock_period_ps,
                   4.0 * cfg.clock_period_ps);
  }

  // Power.
  const double f_ghz = 1000.0 / cfg.clock_period_ps;
  for (std::size_t ni = 0; ni < n_nets; ++ni) {
    const double act =
        netlist.net_is_clock(static_cast<NetId>(ni)) ? 1.0 : cfg.activity;
    const double p_uw = act * net_load[ni] * cfg.vdd * cfg.vdd * f_ghz * 0.5;
    res.net_switch_mw[ni] = p_uw * 1e-3;
    res.switching_mw += res.net_switch_mw[ni];
  }
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const CellType& t = netlist.cell_type(static_cast<CellId>(ci));
    res.internal_mw += cfg.activity * t.internal_energy * f_ghz * 1e-3;
    res.leakage_mw += t.leakage * 1e-6;
  }
  res.total_mw = res.switching_mw + res.internal_mw + res.leakage_mw;
  return res;
}

}  // namespace dco3d
