#pragma once
// Hold (min-delay) analysis — the fast-path counterpart of the setup STA in
// sta.hpp. Propagates *earliest* arrivals along shortest paths and checks
// them against the capture clock plus the cell hold requirement. Hold
// violations are what racy short paths (e.g. adjacent shift-register bits
// after aggressive placement) produce; useful-skew optimization in
// particular must watch them.

#include <vector>

#include "netlist/netlist.hpp"
#include "timing/sta.hpp"

namespace dco3d {

struct HoldConfig {
  double hold_time_ps = 4.0;       // register hold requirement
  double min_cell_factor = 0.6;    // fraction of nominal delay on fast paths
};

struct HoldResult {
  double whs_ps = 0.0;   // worst hold slack (negative = violating)
  double ths_ps = 0.0;   // total (negative) hold slack
  std::size_t endpoints = 0;
  std::size_t violating_endpoints = 0;
  std::vector<double> endpoint_slack;  // per cell; non-endpoints hold +inf
};

/// Run hold analysis. Min-path delays use the same topology as run_sta but
/// take the minimum over fanins, scale cell delays by min_cell_factor (fast
/// corner), and drop the slew adder. `clk_skew_ps` must match the skews used
/// for setup analysis — useful skew that fixes setup can break hold, which
/// this check exposes.
HoldResult run_hold_check(const Netlist& netlist, const Placement3D& placement,
                          const TimingConfig& cfg, const HoldConfig& hold_cfg = {},
                          const std::vector<double>* clk_skew_ps = nullptr);

}  // namespace dco3d
