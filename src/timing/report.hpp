#pragma once
// Critical-path reporting on top of the STA results — the report_timing of
// our signoff substitute. Reconstructs the worst paths by walking the
// max-arrival predecessor chain from the worst endpoints back to their
// launch points.

#include <string>
#include <vector>

#include "timing/sta.hpp"

namespace dco3d {

/// One stage of a timing path.
struct PathPoint {
  CellId cell = -1;
  double arrival_ps = 0.0;  // at this cell's output (or endpoint input)
  double incr_ps = 0.0;     // delay contributed by this stage
};

struct TimingPath {
  CellId endpoint = -1;
  double slack_ps = 0.0;
  double arrival_ps = 0.0;   // data arrival at the endpoint
  double required_ps = 0.0;
  std::vector<PathPoint> points;  // launch point first, endpoint last
};

/// Extract the k worst (smallest-slack) endpoint paths. `timing` must come
/// from run_sta on the same netlist/placement/config (its cell arrivals are
/// reused); `clk_skew_ps`/`net_length_scale` must match that STA call.
std::vector<TimingPath> worst_paths(
    const Netlist& netlist, const Placement3D& placement,
    const TimingConfig& cfg, const TimingResult& timing, std::size_t k,
    const std::vector<double>* clk_skew_ps = nullptr,
    const std::vector<double>* net_length_scale = nullptr);

/// Human-readable single-path report (one line per stage).
std::string format_path(const Netlist& netlist, const TimingPath& path);

}  // namespace dco3d
