#pragma once
// Static timing analysis and power estimation — our substitute for the ICC2
// signoff reports. Provides:
//   * WNS / TNS (Table III timing columns),
//   * per-cell worst slack and input/output slews and per-net switching
//     power (the Table II node features of the GNN),
//   * switching + internal + leakage power (Table III power column).
//
// Delay model: lumped RC per net — driver resistance times total load
// (pin caps + HPWL wire cap) plus an Elmore wire term and a per-hop 3D via
// penalty. Slews degrade with load and feed a slew-dependent delay adder.
// Registers launch/capture against an ideal clock plus per-register skew
// supplied by CTS (flow/cts.hpp).

#include <vector>

#include "netlist/netlist.hpp"

namespace dco3d {

struct TimingConfig {
  double clock_period_ps = 300.0;
  double wire_cap_per_um = 0.20;   // fF/um
  double wire_res_per_um = 2.0;    // Ohm/um (used in the Elmore term)
  double via_delay_ps = 1.2;       // F2F bond hop
  double via_cap_ff = 0.08;
  double setup_ps = 12.0;
  double clk_to_q_ps = 18.0;
  double base_slew_ps = 8.0;
  double slew_impact = 0.12;       // delay adder per ps of input slew
  double activity = 0.15;          // average toggle rate
  double vdd = 0.65;               // V
};

struct TimingResult {
  double wns_ps = 0.0;  // worst negative slack (<= 0 when violating)
  double tns_ps = 0.0;  // total negative slack (sum over endpoints, <= 0)
  std::size_t endpoints = 0;
  std::size_t violating_endpoints = 0;

  // Per-cell quantities (Table II features).
  std::vector<double> cell_slack;      // worst slack through the cell, ps
  std::vector<double> cell_arrival;    // worst arrival at the cell output, ps
  std::vector<double> cell_out_slew;   // ps
  std::vector<double> cell_in_slew;    // ps
  std::vector<double> net_switch_mw;   // per net switching power, mW

  // Power breakdown, mW.
  double switching_mw = 0.0;
  double internal_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw = 0.0;
};

/// Run STA + power. `clk_skew_ps` optionally gives per-cell clock arrival
/// offsets for sequential cells (from CTS); empty means ideal clock.
/// `net_length_scale` optionally scales each net's effective wire length
/// (>= 1): after routing, congestion detours lengthen nets, which is how
/// post-route congestion degrades signoff timing and power (the effect
/// DCO-3D exploits). Empty means HPWL lengths.
TimingResult run_sta(const Netlist& netlist, const Placement3D& placement,
                     const TimingConfig& cfg,
                     const std::vector<double>* clk_skew_ps = nullptr,
                     const std::vector<double>* net_length_scale = nullptr);

/// Total load capacitance seen by a net's driver (pin caps + wire cap), fF.
/// `length_scale` stretches the wire-length term (detour factor).
double net_load_ff(const Netlist& netlist, const Placement3D& placement,
                   NetId net, const TimingConfig& cfg, double length_scale = 1.0);

}  // namespace dco3d
