#include "timing/report.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

namespace dco3d {

namespace {

bool is_launch(const Netlist& nl, CellId c) {
  return nl.is_sequential(c) || nl.is_io(c) || nl.is_macro(c);
}

}  // namespace

std::vector<TimingPath> worst_paths(
    const Netlist& netlist, const Placement3D& placement,
    const TimingConfig& cfg, const TimingResult& timing, std::size_t k,
    const std::vector<double>* clk_skew_ps,
    const std::vector<double>* net_length_scale) {
  const std::size_t n_cells = netlist.num_cells();

  auto skew = [&](CellId c) -> double {
    if (!clk_skew_ps || clk_skew_ps->empty()) return 0.0;
    return (*clk_skew_ps)[static_cast<std::size_t>(c)];
  };
  auto scale_of = [&](std::size_t ni) {
    if (!net_length_scale || net_length_scale->empty()) return 1.0;
    return std::max((*net_length_scale)[ni], 1.0);
  };
  // Must mirror the wire-delay model in sta.cpp.
  auto wire_delay = [&](const Pin& driver, const Pin& sink, std::size_t ni) {
    const Point a = placement.pin_position(driver);
    const Point b = placement.pin_position(sink);
    const double len = manhattan(a, b) * scale_of(ni);
    double d = 0.5 * (cfg.wire_res_per_um * len) * (cfg.wire_cap_per_um * len) * 1e-3;
    const int dt = std::abs(placement.tier[static_cast<std::size_t>(driver.cell)] -
                            placement.tier[static_cast<std::size_t>(sink.cell)]);
    if (dt > 0) d += cfg.via_delay_ps * static_cast<double>(dt);
    return d;
  };

  // Fanin index: for each cell, the (net, driver) arcs feeding it, plus the
  // worst endpoint arrival and its feeding driver.
  struct Fanin {
    NetId net;
    CellId driver;
  };
  std::vector<std::vector<Fanin>> fanin(n_cells);
  struct EndpointState {
    double arrival = 0.0;
    CellId from = -1;
    NetId via_net = -1;
  };
  std::vector<EndpointState> ep(n_cells);
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni) {
    const auto id = static_cast<NetId>(ni);
    if (netlist.net_is_clock(id)) continue;
    const Pin& driver = netlist.net_driver(id);
    for (const Pin& s : netlist.net_pins(id)) {
      if (s.dir != PinDir::kSink) continue;
      const auto si = static_cast<std::size_t>(s.cell);
      fanin[si].push_back({id, driver.cell});
      if (is_launch(netlist, s.cell)) {
        const double at =
            timing.cell_arrival[static_cast<std::size_t>(driver.cell)] +
            wire_delay(driver, s, ni);
        if (at > ep[si].arrival) {
          ep[si] = {at, driver.cell, id};
        }
      }
    }
  }

  // Rank endpoints by slack.
  struct Candidate {
    CellId cell;
    double slack;
    double required;
  };
  std::vector<Candidate> candidates;
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!is_launch(netlist, id) || ep[ci].from < 0) continue;
    double required;
    if (netlist.is_sequential(id) || netlist.is_macro(id))
      required = cfg.clock_period_ps + skew(id) - cfg.setup_ps;
    else if (netlist.is_io(id))
      required = cfg.clock_period_ps;
    else
      continue;
    candidates.push_back({id, required - ep[ci].arrival, required});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.slack < b.slack; });
  if (candidates.size() > k) candidates.resize(k);

  std::vector<TimingPath> paths;
  for (const Candidate& c : candidates) {
    TimingPath path;
    path.endpoint = c.cell;
    path.slack_ps = c.slack;
    path.required_ps = c.required;
    path.arrival_ps = ep[static_cast<std::size_t>(c.cell)].arrival;

    // Walk the max-arrival predecessor chain back to a launch point.
    std::vector<PathPoint> rev;
    rev.push_back({c.cell, path.arrival_ps, 0.0});
    CellId cur = ep[static_cast<std::size_t>(c.cell)].from;
    std::unordered_set<CellId> visited{c.cell};
    while (cur >= 0 && !visited.contains(cur)) {
      visited.insert(cur);
      rev.push_back({cur, timing.cell_arrival[static_cast<std::size_t>(cur)], 0.0});
      if (is_launch(netlist, cur)) break;
      // Worst fanin of cur.
      CellId best = -1;
      double best_at = -1e18;
      for (const Fanin& f : fanin[static_cast<std::size_t>(cur)]) {
        const Pin& driver = netlist.net_driver(f.net);
        // Locate cur's sink pin on this net for the wire delay.
        for (const Pin& s : netlist.net_pins(f.net)) {
          if (s.dir != PinDir::kSink || s.cell != cur) continue;
          const double at =
              timing.cell_arrival[static_cast<std::size_t>(f.driver)] +
              wire_delay(driver, s, static_cast<std::size_t>(f.net));
          if (at > best_at) {
            best_at = at;
            best = f.driver;
          }
        }
      }
      cur = best;
    }
    std::reverse(rev.begin(), rev.end());
    for (std::size_t i = 1; i < rev.size(); ++i)
      rev[i].incr_ps = rev[i].arrival_ps - rev[i - 1].arrival_ps;
    path.points = std::move(rev);
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string format_path(const Netlist& netlist, const TimingPath& path) {
  std::ostringstream ss;
  ss << "endpoint " << netlist.cell_name(path.endpoint) << "  slack "
     << path.slack_ps << " ps  (arrival " << path.arrival_ps << ", required "
     << path.required_ps << ")\n";
  for (const PathPoint& p : path.points) {
    ss << "  " << netlist.cell_name(p.cell) << " ("
       << netlist.cell_type(p.cell).name << ")  arrival " << p.arrival_ps
       << "  incr " << p.incr_ps << "\n";
  }
  return ss.str();
}

}  // namespace dco3d
