#pragma once
// GNN-based 3D cell spreader (§IV-A): three shared-weight GCN layers over
// the netlist graph predict, per cell, a bounded (dx, dy) refinement of the
// 2D position and a soft tier probability z in [0, 1] (probability of the
// top die). Optimizing the GNN's weights instead of raw per-cell coordinates
// keeps the parameter count independent of design size and lets connected
// cells move coherently.

#include <memory>

#include "netlist/netlist.hpp"
#include "nn/gcn.hpp"

namespace dco3d {

struct SpreaderConfig {
  std::int64_t hidden = 32;
  double max_disp_frac = 0.12;  // max |dx| as a fraction of die width
  // Ablation switch: freeze tier assignments at their input values, reducing
  // DCO to 2D spreading (used by bench_ablation_z to quantify the paper's
  // z-dimension contribution).
  bool freeze_tier = false;
};

/// Decoded spreader output: differentiable coordinate vectors over all cells.
/// Fixed cells (IOs, macros) are pinned to their original position and hard
/// tier via masking, so no gradient moves them.
struct SpreaderOutput {
  nn::Var x;  // [N] absolute x
  nn::Var y;  // [N] absolute y
  nn::Var z;  // [N] soft top-die probability (two-tier stacks only)
  // K > 2 stacks: per-tier probability vectors from the stick-breaking
  // relaxation, p[t][i] = P(cell i on tier t), summing to 1 per cell. Empty
  // for the classic two-tier path (which uses z).
  std::vector<nn::Var> p;
};

class GnnSpreader {
 public:
  GnnSpreader(const Netlist& netlist, const Placement3D& initial,
              const SpreaderConfig& cfg, Rng& rng);

  /// Forward pass: GNN over (adjacency, features) -> decoded coordinates.
  SpreaderOutput forward(const nn::Var& features) const;

  std::vector<nn::Var> parameters() const { return gcn_.parameters(); }
  const std::shared_ptr<const nn::Csr>& adjacency() const { return adj_; }

  /// Write the hard assignment (z >= 0.5 -> top die for two tiers, argmax
  /// over p otherwise) of an output back into a placement, clamping
  /// positions into the outline.
  void commit(const SpreaderOutput& out, Placement3D& placement) const;

  int num_tiers() const { return num_tiers_; }

 private:
  const Netlist& netlist_;
  SpreaderConfig cfg_;
  int num_tiers_ = 2;
  nn::GcnStack gcn_;
  std::shared_ptr<const nn::Csr> adj_;
  nn::Tensor x0_, y0_;      // initial positions
  nn::Tensor mask_;         // 1 for movable cells
  nn::Tensor fixed_tier_;   // hard z for fixed cells (two-tier path)
  nn::Tensor tier_bias_;    // +/- logit bias toward the initial tier
  // K > 2: per-boundary stick biases [K-1 x N] and fixed one-hot tier
  // probabilities [K x N] for pinned cells.
  std::vector<nn::Tensor> stick_bias_;
  std::vector<nn::Tensor> fixed_onehot_;
  std::vector<int> init_tier_;
  Rect outline_;
};

}  // namespace dco3d
