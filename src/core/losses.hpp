#pragma once
// The differentiable loss functions of §IV:
//   * displacement loss (Eq. 11) — keep cells near their optimized 2D spots,
//   * cutsize loss (Eq. 7) — normalized expected cut under soft z,
//   * overlap loss (Eq. 8-10) — bell-shaped smoothed density,
//   * congestion loss — RMS of the Siamese UNet's predicted congestion.

#include <memory>
#include <vector>

#include "core/trainer.hpp"
#include "grid/soft_maps.hpp"
#include "netlist/netlist.hpp"
#include "nn/autograd.hpp"
#include "nn/unet.hpp"

namespace dco3d {

/// Displacement loss (Eq. 11): sum_i (x_i - x_i^o)^2 + (y_i - y_i^o)^2,
/// normalized by cell count and die dimensions so weights are scale-free.
nn::Var displacement_loss(const nn::Var& x, const nn::Var& y,
                          const nn::Tensor& x0, const nn::Tensor& y0,
                          const Rect& outline);

/// Soft cutsize loss (Eq. 7) over the cell graph: the expected number of cut
/// edges normalized by the expected per-die connectivity,
///   L = cut/deg(T) + cut/deg(B),
/// with cut = sum_(u,v) [z_u(1-z_v) + z_v(1-z_u)], deg(T) = sum_u deg_u z_u.
/// Implemented as a custom autograd node with analytic gradients in z.
nn::Var cutsize_loss(const nn::Var& z,
                     std::shared_ptr<const std::vector<std::pair<std::int64_t, std::int64_t>>> edges);

/// K-tier cutsize: p holds per-tier probability vectors (p[t][i] = P(cell i
/// on tier t)). The expected inter-tier cut of an edge is the expected tier
/// distance E|T_u - T_v| = sum_j [F_u(j) + F_v(j) - 2 F_u(j) F_v(j)] over
/// the K-1 tier boundaries (F = the tier CDF) — so a move across two
/// boundaries costs two via stacks. Normalized by sum_t cut/deg(t); reduces
/// exactly to the two-die form at K = 2. Analytic gradients in every p[t].
nn::Var cutsize_loss(const std::vector<nn::Var>& p,
                     std::shared_ptr<const std::vector<std::pair<std::int64_t, std::int64_t>>> edges);

/// Overlap (density) loss, Eq. (8)-(10): per-die bin densities accumulated
/// through the bell-shaped potentials p_x p_y with the paper's a, b smoothing
/// constants; the penalty is the mean squared excess over `target_util`.
/// Differentiable in x, y (through the potentials) and z (tier weights).
nn::Var overlap_loss(const Netlist& netlist, const nn::Var& x, const nn::Var& y,
                     const nn::Var& z, const Rect& outline, int bins_x,
                     int bins_y, double target_util);

/// K-tier overlap loss: per-tier bin densities weighted by the tier
/// probabilities p[t]; penalty is the mean squared excess over all K * bins
/// bins. Reduces to the two-die form at K = 2 with p = {1-z, z}.
nn::Var overlap_loss(const Netlist& netlist, const nn::Var& x, const nn::Var& y,
                     const std::vector<nn::Var>& p, const Rect& outline,
                     int bins_x, int bins_y, double target_util);

/// Thermal-density loss (optional channel for stacked dies): per-cell power
/// is scattered through the same bell potentials as the overlap loss, each
/// cell weighted by its expected tier depth sum_t w_t p_t with w_t =
/// (t + 1)/K — tiers farther from the tier-0 heat sink count more. The
/// penalty is the mean squared depth-weighted power density, so gradient
/// descent both spreads hot cells laterally and pulls them toward the heat
/// sink. Differentiable in x, y and every p[t]. `cell_power` is a [N] tensor
/// of per-cell power (mW).
nn::Var thermal_density_loss(const Netlist& netlist, const nn::Var& x,
                             const nn::Var& y, const std::vector<nn::Var>& p,
                             const nn::Tensor& cell_power, const Rect& outline,
                             int bins_x, int bins_y);

/// Congestion loss: Eq. (4) against an all-zero target — the RMS of the
/// predicted post-route congestion of every tier, backpropagated through the
/// frozen Siamese UNet and the soft feature maps (Eq. 5/6 chain). K > 2 maps
/// run through the N-way forward.
nn::Var congestion_loss(const nn::SiameseUNet& model, const SoftMaps& maps);

/// Same, but routed through a trained Predictor so the soft maps receive the
/// per-channel input normalization the model was trained with.
nn::Var congestion_loss(const Predictor& predictor, const SoftMaps& maps);

/// The bell-shaped 1D potential of Eq. (8) with smoothing constants of
/// Eq. (9); exposed for unit tests. `d` is the center-to-center distance,
/// `wb` the block (cell) width, `wv` the bin width.
double bell_potential(double d, double wb, double wv);
/// Its derivative with respect to d.
double bell_potential_grad(double d, double wb, double wv);

}  // namespace dco3d
