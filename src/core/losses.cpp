#include "core/losses.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/ops.hpp"
#include <utility>

#include "util/parallel.hpp"

namespace dco3d {

namespace {

// Scatter-accumulating loops (edge -> cell, cell -> bin) use per-chunk
// buffers merged in fixed chunk order; the cap bounds buffer memory and keeps
// results independent of the thread count.
constexpr std::int64_t kScatterChunks = 8;

void add_vec(std::vector<double>& into, const std::vector<double>& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
}

}  // namespace

nn::Var displacement_loss(const nn::Var& x, const nn::Var& y,
                          const nn::Tensor& x0, const nn::Tensor& y0,
                          const Rect& outline) {
  nn::Var x0v = nn::make_leaf(x0);
  nn::Var y0v = nn::make_leaf(y0);
  nn::Var dx = nn::mul_scalar(nn::sub(x, x0v), static_cast<float>(1.0 / outline.width()));
  nn::Var dy = nn::mul_scalar(nn::sub(y, y0v), static_cast<float>(1.0 / outline.height()));
  return nn::add(nn::mean_op(nn::square(dx)), nn::mean_op(nn::square(dy)));
}

nn::Var cutsize_loss(
    const nn::Var& z,
    std::shared_ptr<const std::vector<std::pair<std::int64_t, std::int64_t>>> edges) {
  assert(edges);
  const auto n = static_cast<std::size_t>(z->value.numel());
  auto zs = std::as_const(z->value).data();

  // Degrees.
  auto degree = std::make_shared<std::vector<double>>(n, 0.0);
  for (auto [u, v] : *edges) {
    (*degree)[static_cast<std::size_t>(u)] += 1.0;
    (*degree)[static_cast<std::size_t>(v)] += 1.0;
  }

  const auto n_edges = static_cast<std::int64_t>(edges->size());
  double cut = util::parallel_reduce(
      0, n_edges, 4096, 0.0,
      [&](std::int64_t b, std::int64_t e, double& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto [u, v] = (*edges)[static_cast<std::size_t>(i)];
          const double zu =
              std::clamp(static_cast<double>(zs[static_cast<std::size_t>(u)]), 0.0, 1.0);
          const double zv =
              std::clamp(static_cast<double>(zs[static_cast<std::size_t>(v)]), 0.0, 1.0);
          acc += zu * (1.0 - zv) + zv * (1.0 - zu);
        }
      },
      [](double& into, const double& from) { into += from; });

  struct DegSums {
    double t = 0.0, b = 0.0;
  };
  const DegSums deg = util::parallel_reduce(
      0, static_cast<std::int64_t>(n), 8192, DegSums{},
      [&](std::int64_t b, std::int64_t e, DegSums& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          const double zi = std::clamp(static_cast<double>(zs[ci]), 0.0, 1.0);
          acc.t += (*degree)[ci] * zi;
          acc.b += (*degree)[ci] * (1.0 - zi);
        }
      },
      [](DegSums& into, const DegSums& from) {
        into.t += from.t;
        into.b += from.b;
      });
  double deg_t = deg.t, deg_b = deg.b;
  constexpr double kEps = 1e-6;
  deg_t = std::max(deg_t, kEps);
  deg_b = std::max(deg_b, kEps);
  const double loss = cut / deg_t + cut / deg_b;

  auto backward = [edges, degree, cut, deg_t, deg_b](nn::Node& node) {
    nn::Node& pz = *node.parents[0];
    if (!pz.requires_grad) return;
    pz.ensure_grad();
    const float g = node.grad[0];
    auto zs = std::as_const(pz.value).data();
    auto gz = pz.grad.data();
    const double inv = 1.0 / deg_t + 1.0 / deg_b;
    // d(cut)/dz_i = sum_{j in N(i)} (1 - 2 z_j); the per-edge scatter hits
    // arbitrary cells, so chunks accumulate private vectors merged in order.
    const auto n_edges = static_cast<std::int64_t>(edges->size());
    std::vector<double> dcut = util::parallel_reduce(
        0, n_edges, util::grain_for_chunks(n_edges, kScatterChunks),
        std::vector<double>(degree->size(), 0.0),
        [&](std::int64_t b, std::int64_t e, std::vector<double>& acc) {
          for (std::int64_t i = b; i < e; ++i) {
            const auto [u, v] = (*edges)[static_cast<std::size_t>(i)];
            const double zu = std::clamp(
                static_cast<double>(zs[static_cast<std::size_t>(u)]), 0.0, 1.0);
            const double zv = std::clamp(
                static_cast<double>(zs[static_cast<std::size_t>(v)]), 0.0, 1.0);
            acc[static_cast<std::size_t>(u)] += 1.0 - 2.0 * zv;
            acc[static_cast<std::size_t>(v)] += 1.0 - 2.0 * zu;
          }
        },
        add_vec);
    util::parallel_for(
        0, static_cast<std::int64_t>(degree->size()), 8192,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) {
            const auto ci = static_cast<std::size_t>(i);
            const double d_deg = (*degree)[ci];
            // d(1/degT)/dz_i = -deg_i/degT^2 ; d(1/degB)/dz_i = +deg_i/degB^2.
            const double term =
                dcut[ci] * inv +
                cut * (-d_deg / (deg_t * deg_t) + d_deg / (deg_b * deg_b));
            gz[ci] += g * static_cast<float>(term);
          }
        });
  };
  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)), {z},
                       std::move(backward));
}

double bell_potential(double d, double wb, double wv) {
  d = std::abs(d);
  const double r1 = wb + wv * 0.5;
  const double r2 = 2.0 * wb + wv * 0.5;
  if (d <= r1) {
    const double a = 4.0 / ((wv + 2.0 * wb) * (wv + 4.0 * wb));
    return 1.0 - a * d * d;
  }
  if (d <= r2) {
    const double b = 2.0 / (wb * (wv + 4.0 * wb));
    return b * (d - r2) * (d - r2);
  }
  return 0.0;
}

double bell_potential_grad(double d, double wb, double wv) {
  const double sign = d >= 0 ? 1.0 : -1.0;
  d = std::abs(d);
  const double r1 = wb + wv * 0.5;
  const double r2 = 2.0 * wb + wv * 0.5;
  if (d <= r1) {
    const double a = 4.0 / ((wv + 2.0 * wb) * (wv + 4.0 * wb));
    return sign * (-2.0 * a * d);
  }
  if (d <= r2) {
    const double b = 2.0 / (wb * (wv + 4.0 * wb));
    return sign * (2.0 * b * (d - r2));
  }
  return 0.0;
}

nn::Var overlap_loss(const Netlist& netlist, const nn::Var& x, const nn::Var& y,
                     const nn::Var& z, const Rect& outline, int bins_x,
                     int bins_y, double target_util) {
  const auto n = static_cast<std::size_t>(netlist.num_cells());
  assert(x->value.numel() == static_cast<std::int64_t>(n));
  const double wv_x = outline.width() / bins_x;
  const double wv_y = outline.height() / bins_y;
  const double bin_area = wv_x * wv_y;
  const std::size_t n_bins = static_cast<std::size_t>(bins_x) * bins_y;

  auto xs = std::as_const(x->value).data();
  auto ys = std::as_const(y->value).data();
  auto zs = std::as_const(z->value).data();

  struct CellGeom {
    double cx, cy, wb_x, wb_y, c_norm, zt;
    int b0x, b1x, b0y, b1y;
    bool active;
  };
  auto geoms = std::make_shared<std::vector<CellGeom>>(n);

  auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
  auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

  // Forward: accumulate per-die smoothed densities. Each cell's geometry slot
  // is private to its chunk, but the bell potentials scatter onto shared bins,
  // so densities go through per-chunk buffers merged in chunk order. Layout is
  // [bot bins..., top bins...].
  std::vector<double> density = util::parallel_reduce(
      0, static_cast<std::int64_t>(n),
      util::grain_for_chunks(static_cast<std::int64_t>(n), kScatterChunks),
      std::vector<double>(2 * n_bins, 0.0),
      [&](std::int64_t cb, std::int64_t ce, std::vector<double>& acc) {
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          CellGeom& g = (*geoms)[ci];
          const auto id = static_cast<CellId>(ci);
          const CellType& t = netlist.cell_type(id);
          g.active = netlist.is_movable(id) && t.area() > 0.0;
          if (!g.active) continue;
          g.wb_x = std::max(t.width * 0.5, 1e-6);
          g.wb_y = std::max(t.height * 0.5, 1e-6);
          g.cx = xs[ci] + t.width * 0.5;
          g.cy = ys[ci] + t.height * 0.5;
          g.zt = std::clamp(static_cast<double>(zs[ci]), 0.0, 1.0);
          const double rx = 2.0 * g.wb_x + wv_x * 0.5;
          const double ry = 2.0 * g.wb_y + wv_y * 0.5;
          g.b0x = std::clamp(static_cast<int>((g.cx - rx - outline.xlo) / wv_x), 0, bins_x - 1);
          g.b1x = std::clamp(static_cast<int>((g.cx + rx - outline.xlo) / wv_x), 0, bins_x - 1);
          g.b0y = std::clamp(static_cast<int>((g.cy - ry - outline.ylo) / wv_y), 0, bins_y - 1);
          g.b1y = std::clamp(static_cast<int>((g.cy + ry - outline.ylo) / wv_y), 0, bins_y - 1);
          // Normalize so total potential mass equals cell area (c_v of Eq. 10).
          double raw = 0.0;
          for (int bx = g.b0x; bx <= g.b1x; ++bx)
            for (int by = g.b0y; by <= g.b1y; ++by)
              raw += bell_potential(g.cx - bin_center_x(bx), g.wb_x, wv_x) *
                     bell_potential(g.cy - bin_center_y(by), g.wb_y, wv_y);
          g.c_norm = raw > 1e-12 ? t.area() / raw : 0.0;
          for (int bx = g.b0x; bx <= g.b1x; ++bx) {
            const double px = bell_potential(g.cx - bin_center_x(bx), g.wb_x, wv_x);
            for (int by = g.b0y; by <= g.b1y; ++by) {
              const double py = bell_potential(g.cy - bin_center_y(by), g.wb_y, wv_y);
              const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
              acc[bi] += g.c_norm * px * py * (1.0 - g.zt);
              acc[n_bins + bi] += g.c_norm * px * py * g.zt;
            }
          }
        }
      },
      add_vec);

  // Penalty: mean squared utilization excess over both dies. Excess slots are
  // per-bin (disjoint writes); the loss itself is a deterministic chunked sum.
  auto excess = std::make_shared<std::vector<double>>(2 * n_bins, 0.0);
  double loss = util::parallel_reduce(
      0, static_cast<std::int64_t>(2 * n_bins), 8192, 0.0,
      [&](std::int64_t b, std::int64_t e, double& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto bi = static_cast<std::size_t>(i);
          const double rho = density[bi] / bin_area;
          const double ex = std::max(rho - target_util, 0.0);
          (*excess)[bi] = ex;
          acc += ex * ex;
        }
      },
      [](double& into, const double& from) { into += from; });
  loss /= static_cast<double>(2 * n_bins);

  auto backward = [geoms, excess, outline, bins_x, bins_y, wv_x, wv_y, bin_area,
                   n_bins](nn::Node& node) {
    nn::Node& px_node = *node.parents[0];
    nn::Node& py_node = *node.parents[1];
    nn::Node& pz_node = *node.parents[2];
    const float g = node.grad[0];
    const double scale = 2.0 / (static_cast<double>(2 * n_bins) * bin_area);

    auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
    auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

    std::vector<double> gx(geoms->size(), 0.0), gy(geoms->size(), 0.0),
        gz(geoms->size(), 0.0);
    // Each cell reads shared excess bins but writes only its own gradient
    // slots, so the chunks are disjoint without buffering.
    util::parallel_for(
        0, static_cast<std::int64_t>(geoms->size()), 256,
        [&](std::int64_t cb, std::int64_t ce) {
          for (std::int64_t i = cb; i < ce; ++i) {
            const auto ci = static_cast<std::size_t>(i);
            const CellGeom& geo = (*geoms)[ci];
            if (!geo.active || geo.c_norm == 0.0) continue;
            for (int bx = geo.b0x; bx <= geo.b1x; ++bx) {
              const double dx = geo.cx - bin_center_x(bx);
              const double pxv = bell_potential(dx, geo.wb_x, wv_x);
              const double dpx = bell_potential_grad(dx, geo.wb_x, wv_x);
              for (int by = geo.b0y; by <= geo.b1y; ++by) {
                const double dy = geo.cy - bin_center_y(by);
                const double pyv = bell_potential(dy, geo.wb_y, wv_y);
                const double dpy = bell_potential_grad(dy, geo.wb_y, wv_y);
                const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
                const double e_bot = (*excess)[bi];
                const double e_top = (*excess)[n_bins + bi];
                const double w_mix = e_bot * (1.0 - geo.zt) + e_top * geo.zt;
                gx[ci] += scale * w_mix * geo.c_norm * dpx * pyv;
                gy[ci] += scale * w_mix * geo.c_norm * pxv * dpy;
                gz[ci] += scale * (e_top - e_bot) * geo.c_norm * pxv * pyv;
              }
            }
          }
        });
    auto flush = [g](nn::Node& p, const std::vector<double>& vec) {
      if (!p.requires_grad) return;
      p.ensure_grad();
      auto dst = p.grad.data();
      for (std::size_t i = 0; i < vec.size(); ++i)
        dst[i] += g * static_cast<float>(vec[i]);
    };
    flush(px_node, gx);
    flush(py_node, gy);
    flush(pz_node, gz);
  };

  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)), {x, y, z},
                       std::move(backward));
}

nn::Var congestion_loss(const nn::SiameseUNet& model, const SoftMaps& maps) {
  auto [c_top, c_bot] = model.forward(maps.top(), maps.bottom());
  nn::Var zero_t = nn::make_leaf(nn::Tensor(c_top->value.shape()));
  nn::Var zero_b = nn::make_leaf(nn::Tensor(c_bot->value.shape()));
  return nn::siamese_loss(c_top, zero_t, c_bot, zero_b);
}

nn::Var congestion_loss(const Predictor& predictor, const SoftMaps& maps) {
  auto [c_top, c_bot] =
      predictor.model->forward(predictor.normalize_features(maps.top()),
                               predictor.normalize_features(maps.bottom()));
  nn::Var zero_t = nn::make_leaf(nn::Tensor(c_top->value.shape()));
  nn::Var zero_b = nn::make_leaf(nn::Tensor(c_bot->value.shape()));
  return nn::siamese_loss(c_top, zero_t, c_bot, zero_b);
}

}  // namespace dco3d
