#include "core/losses.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/ops.hpp"
#include <utility>

#include "util/parallel.hpp"

namespace dco3d {

namespace {

// Scatter-accumulating loops (edge -> cell, cell -> bin) use per-chunk
// buffers merged in fixed chunk order; the cap bounds buffer memory and keeps
// results independent of the thread count.
constexpr std::int64_t kScatterChunks = 8;

void add_vec(std::vector<double>& into, const std::vector<double>& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
}

}  // namespace

nn::Var displacement_loss(const nn::Var& x, const nn::Var& y,
                          const nn::Tensor& x0, const nn::Tensor& y0,
                          const Rect& outline) {
  nn::Var x0v = nn::make_leaf(x0);
  nn::Var y0v = nn::make_leaf(y0);
  nn::Var dx = nn::mul_scalar(nn::sub(x, x0v), static_cast<float>(1.0 / outline.width()));
  nn::Var dy = nn::mul_scalar(nn::sub(y, y0v), static_cast<float>(1.0 / outline.height()));
  return nn::add(nn::mean_op(nn::square(dx)), nn::mean_op(nn::square(dy)));
}

nn::Var cutsize_loss(
    const nn::Var& z,
    std::shared_ptr<const std::vector<std::pair<std::int64_t, std::int64_t>>> edges) {
  assert(edges);
  const auto n = static_cast<std::size_t>(z->value.numel());
  auto zs = std::as_const(z->value).data();

  // Degrees.
  auto degree = std::make_shared<std::vector<double>>(n, 0.0);
  for (auto [u, v] : *edges) {
    (*degree)[static_cast<std::size_t>(u)] += 1.0;
    (*degree)[static_cast<std::size_t>(v)] += 1.0;
  }

  const auto n_edges = static_cast<std::int64_t>(edges->size());
  double cut = util::parallel_reduce(
      0, n_edges, 4096, 0.0,
      [&](std::int64_t b, std::int64_t e, double& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto [u, v] = (*edges)[static_cast<std::size_t>(i)];
          const double zu =
              std::clamp(static_cast<double>(zs[static_cast<std::size_t>(u)]), 0.0, 1.0);
          const double zv =
              std::clamp(static_cast<double>(zs[static_cast<std::size_t>(v)]), 0.0, 1.0);
          acc += zu * (1.0 - zv) + zv * (1.0 - zu);
        }
      },
      [](double& into, const double& from) { into += from; });

  struct DegSums {
    double t = 0.0, b = 0.0;
  };
  const DegSums deg = util::parallel_reduce(
      0, static_cast<std::int64_t>(n), 8192, DegSums{},
      [&](std::int64_t b, std::int64_t e, DegSums& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          const double zi = std::clamp(static_cast<double>(zs[ci]), 0.0, 1.0);
          acc.t += (*degree)[ci] * zi;
          acc.b += (*degree)[ci] * (1.0 - zi);
        }
      },
      [](DegSums& into, const DegSums& from) {
        into.t += from.t;
        into.b += from.b;
      });
  double deg_t = deg.t, deg_b = deg.b;
  constexpr double kEps = 1e-6;
  deg_t = std::max(deg_t, kEps);
  deg_b = std::max(deg_b, kEps);
  const double loss = cut / deg_t + cut / deg_b;

  auto backward = [edges, degree, cut, deg_t, deg_b](nn::Node& node) {
    nn::Node& pz = *node.parents[0];
    if (!pz.requires_grad) return;
    pz.ensure_grad();
    const float g = node.grad[0];
    auto zs = std::as_const(pz.value).data();
    auto gz = pz.grad.data();
    const double inv = 1.0 / deg_t + 1.0 / deg_b;
    // d(cut)/dz_i = sum_{j in N(i)} (1 - 2 z_j); the per-edge scatter hits
    // arbitrary cells, so chunks accumulate private vectors merged in order.
    const auto n_edges = static_cast<std::int64_t>(edges->size());
    std::vector<double> dcut = util::parallel_reduce(
        0, n_edges, util::grain_for_chunks(n_edges, kScatterChunks),
        std::vector<double>(degree->size(), 0.0),
        [&](std::int64_t b, std::int64_t e, std::vector<double>& acc) {
          for (std::int64_t i = b; i < e; ++i) {
            const auto [u, v] = (*edges)[static_cast<std::size_t>(i)];
            const double zu = std::clamp(
                static_cast<double>(zs[static_cast<std::size_t>(u)]), 0.0, 1.0);
            const double zv = std::clamp(
                static_cast<double>(zs[static_cast<std::size_t>(v)]), 0.0, 1.0);
            acc[static_cast<std::size_t>(u)] += 1.0 - 2.0 * zv;
            acc[static_cast<std::size_t>(v)] += 1.0 - 2.0 * zu;
          }
        },
        add_vec);
    util::parallel_for(
        0, static_cast<std::int64_t>(degree->size()), 8192,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) {
            const auto ci = static_cast<std::size_t>(i);
            const double d_deg = (*degree)[ci];
            // d(1/degT)/dz_i = -deg_i/degT^2 ; d(1/degB)/dz_i = +deg_i/degB^2.
            const double term =
                dcut[ci] * inv +
                cut * (-d_deg / (deg_t * deg_t) + d_deg / (deg_b * deg_b));
            gz[ci] += g * static_cast<float>(term);
          }
        });
  };
  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)), {z},
                       std::move(backward));
}

nn::Var cutsize_loss(
    const std::vector<nn::Var>& p,
    std::shared_ptr<const std::vector<std::pair<std::int64_t, std::int64_t>>> edges) {
  assert(edges);
  assert(p.size() >= 2);
  const int K = static_cast<int>(p.size());
  const auto n = static_cast<std::size_t>(p[0]->value.numel());

  // Tier CDF per cell: F[j][i] = P(T_i <= j), j = 0..K-2 (boundary index).
  auto cdf = std::make_shared<std::vector<std::vector<double>>>(
      static_cast<std::size_t>(K - 1), std::vector<double>(n, 0.0));
  {
    std::vector<std::span<const float>> ps(static_cast<std::size_t>(K));
    for (int t = 0; t < K; ++t)
      ps[static_cast<std::size_t>(t)] =
          std::as_const(p[static_cast<std::size_t>(t)]->value).data();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int j = 0; j + 1 < K; ++j) {
        acc += std::clamp(static_cast<double>(ps[static_cast<std::size_t>(j)][i]),
                          0.0, 1.0);
        (*cdf)[static_cast<std::size_t>(j)][i] = std::clamp(acc, 0.0, 1.0);
      }
    }
  }

  // Degrees.
  auto degree = std::make_shared<std::vector<double>>(n, 0.0);
  for (auto [u, v] : *edges) {
    (*degree)[static_cast<std::size_t>(u)] += 1.0;
    (*degree)[static_cast<std::size_t>(v)] += 1.0;
  }

  // cut = sum_edges E|T_u - T_v| via the boundary-crossing identity.
  const auto n_edges = static_cast<std::int64_t>(edges->size());
  const double cut = util::parallel_reduce(
      0, n_edges, 4096, 0.0,
      [&](std::int64_t b, std::int64_t e, double& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto [u, v] = (*edges)[static_cast<std::size_t>(i)];
          for (int j = 0; j + 1 < K; ++j) {
            const double fu = (*cdf)[static_cast<std::size_t>(j)][static_cast<std::size_t>(u)];
            const double fv = (*cdf)[static_cast<std::size_t>(j)][static_cast<std::size_t>(v)];
            acc += fu + fv - 2.0 * fu * fv;
          }
        }
      },
      [](double& into, const double& from) { into += from; });

  // Per-tier expected connectivity deg(t) = sum_u deg_u p_t(u).
  std::vector<double> deg_t(static_cast<std::size_t>(K), 0.0);
  {
    std::vector<std::span<const float>> ps(static_cast<std::size_t>(K));
    for (int t = 0; t < K; ++t)
      ps[static_cast<std::size_t>(t)] =
          std::as_const(p[static_cast<std::size_t>(t)]->value).data();
    for (int t = 0; t < K; ++t) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        acc += (*degree)[i] *
               std::clamp(static_cast<double>(ps[static_cast<std::size_t>(t)][i]),
                          0.0, 1.0);
      constexpr double kEps = 1e-6;
      deg_t[static_cast<std::size_t>(t)] = std::max(acc, kEps);
    }
  }
  double inv_sum = 0.0;
  for (int t = 0; t < K; ++t) inv_sum += 1.0 / deg_t[static_cast<std::size_t>(t)];
  const double loss = cut * inv_sum;

  auto backward = [edges, degree, cdf, cut, deg_t, inv_sum, K](nn::Node& node) {
    const auto n = degree->size();
    bool any = false;
    for (auto& par : node.parents) any = any || par->requires_grad;
    if (!any) return;
    const float g = node.grad[0];

    // dcut/dF_u(j) = 1 - 2 F_v(j) summed over neighbors v; scatter per edge
    // into per-chunk buffers merged in order.
    const auto n_edges = static_cast<std::int64_t>(edges->size());
    std::vector<std::vector<double>> dF = util::parallel_reduce(
        0, n_edges, util::grain_for_chunks(n_edges, kScatterChunks),
        std::vector<std::vector<double>>(static_cast<std::size_t>(K - 1),
                                         std::vector<double>(n, 0.0)),
        [&](std::int64_t b, std::int64_t e, std::vector<std::vector<double>>& acc) {
          for (std::int64_t i = b; i < e; ++i) {
            const auto [u, v] = (*edges)[static_cast<std::size_t>(i)];
            for (int j = 0; j + 1 < K; ++j) {
              const auto js = static_cast<std::size_t>(j);
              const double fu = (*cdf)[js][static_cast<std::size_t>(u)];
              const double fv = (*cdf)[js][static_cast<std::size_t>(v)];
              acc[js][static_cast<std::size_t>(u)] += 1.0 - 2.0 * fv;
              acc[js][static_cast<std::size_t>(v)] += 1.0 - 2.0 * fu;
            }
          }
        },
        [](std::vector<std::vector<double>>& into,
           const std::vector<std::vector<double>>& from) {
          for (std::size_t j = 0; j < into.size(); ++j)
            for (std::size_t i = 0; i < into[j].size(); ++i)
              into[j][i] += from[j][i];
        });

    // dF(j)/dp_t = [t <= j]  =>  dcut/dp_t(u) = sum_{j >= t} dF[j][u].
    // Suffix-sum the boundary grads once, then flush per tier.
    for (int t = 0; t < K; ++t) {
      nn::Node& pt = *node.parents[static_cast<std::size_t>(t)];
      if (!pt.requires_grad) continue;
      pt.ensure_grad();
      auto dst = pt.grad.data();
      util::parallel_for(
          0, static_cast<std::int64_t>(n), 8192,
          [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
              const auto ci = static_cast<std::size_t>(i);
              double dcut = 0.0;
              for (int j = t; j + 1 < K; ++j)
                dcut += dF[static_cast<std::size_t>(j)][ci];
              // d(1/deg_t)/dp_t(u) = -deg_u / deg_t^2.
              const double term =
                  dcut * inv_sum -
                  cut * (*degree)[ci] /
                      (deg_t[static_cast<std::size_t>(t)] *
                       deg_t[static_cast<std::size_t>(t)]);
              dst[ci] += g * static_cast<float>(term);
            }
          });
    }
  };
  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)),
                       std::vector<nn::Var>(p.begin(), p.end()),
                       std::move(backward));
}

double bell_potential(double d, double wb, double wv) {
  d = std::abs(d);
  const double r1 = wb + wv * 0.5;
  const double r2 = 2.0 * wb + wv * 0.5;
  if (d <= r1) {
    const double a = 4.0 / ((wv + 2.0 * wb) * (wv + 4.0 * wb));
    return 1.0 - a * d * d;
  }
  if (d <= r2) {
    const double b = 2.0 / (wb * (wv + 4.0 * wb));
    return b * (d - r2) * (d - r2);
  }
  return 0.0;
}

double bell_potential_grad(double d, double wb, double wv) {
  const double sign = d >= 0 ? 1.0 : -1.0;
  d = std::abs(d);
  const double r1 = wb + wv * 0.5;
  const double r2 = 2.0 * wb + wv * 0.5;
  if (d <= r1) {
    const double a = 4.0 / ((wv + 2.0 * wb) * (wv + 4.0 * wb));
    return sign * (-2.0 * a * d);
  }
  if (d <= r2) {
    const double b = 2.0 / (wb * (wv + 4.0 * wb));
    return sign * (2.0 * b * (d - r2));
  }
  return 0.0;
}

nn::Var overlap_loss(const Netlist& netlist, const nn::Var& x, const nn::Var& y,
                     const nn::Var& z, const Rect& outline, int bins_x,
                     int bins_y, double target_util) {
  const auto n = static_cast<std::size_t>(netlist.num_cells());
  assert(x->value.numel() == static_cast<std::int64_t>(n));
  const double wv_x = outline.width() / bins_x;
  const double wv_y = outline.height() / bins_y;
  const double bin_area = wv_x * wv_y;
  const std::size_t n_bins = static_cast<std::size_t>(bins_x) * bins_y;

  auto xs = std::as_const(x->value).data();
  auto ys = std::as_const(y->value).data();
  auto zs = std::as_const(z->value).data();

  struct CellGeom {
    double cx, cy, wb_x, wb_y, c_norm, zt;
    int b0x, b1x, b0y, b1y;
    bool active;
  };
  auto geoms = std::make_shared<std::vector<CellGeom>>(n);

  auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
  auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

  // Forward: accumulate per-die smoothed densities. Each cell's geometry slot
  // is private to its chunk, but the bell potentials scatter onto shared bins,
  // so densities go through per-chunk buffers merged in chunk order. Layout is
  // [bot bins..., top bins...].
  std::vector<double> density = util::parallel_reduce(
      0, static_cast<std::int64_t>(n),
      util::grain_for_chunks(static_cast<std::int64_t>(n), kScatterChunks),
      std::vector<double>(2 * n_bins, 0.0),
      [&](std::int64_t cb, std::int64_t ce, std::vector<double>& acc) {
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          CellGeom& g = (*geoms)[ci];
          const auto id = static_cast<CellId>(ci);
          const CellType& t = netlist.cell_type(id);
          g.active = netlist.is_movable(id) && t.area() > 0.0;
          if (!g.active) continue;
          g.wb_x = std::max(t.width * 0.5, 1e-6);
          g.wb_y = std::max(t.height * 0.5, 1e-6);
          g.cx = xs[ci] + t.width * 0.5;
          g.cy = ys[ci] + t.height * 0.5;
          g.zt = std::clamp(static_cast<double>(zs[ci]), 0.0, 1.0);
          const double rx = 2.0 * g.wb_x + wv_x * 0.5;
          const double ry = 2.0 * g.wb_y + wv_y * 0.5;
          g.b0x = std::clamp(static_cast<int>((g.cx - rx - outline.xlo) / wv_x), 0, bins_x - 1);
          g.b1x = std::clamp(static_cast<int>((g.cx + rx - outline.xlo) / wv_x), 0, bins_x - 1);
          g.b0y = std::clamp(static_cast<int>((g.cy - ry - outline.ylo) / wv_y), 0, bins_y - 1);
          g.b1y = std::clamp(static_cast<int>((g.cy + ry - outline.ylo) / wv_y), 0, bins_y - 1);
          // Normalize so total potential mass equals cell area (c_v of Eq. 10).
          double raw = 0.0;
          for (int bx = g.b0x; bx <= g.b1x; ++bx)
            for (int by = g.b0y; by <= g.b1y; ++by)
              raw += bell_potential(g.cx - bin_center_x(bx), g.wb_x, wv_x) *
                     bell_potential(g.cy - bin_center_y(by), g.wb_y, wv_y);
          g.c_norm = raw > 1e-12 ? t.area() / raw : 0.0;
          for (int bx = g.b0x; bx <= g.b1x; ++bx) {
            const double px = bell_potential(g.cx - bin_center_x(bx), g.wb_x, wv_x);
            for (int by = g.b0y; by <= g.b1y; ++by) {
              const double py = bell_potential(g.cy - bin_center_y(by), g.wb_y, wv_y);
              const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
              acc[bi] += g.c_norm * px * py * (1.0 - g.zt);
              acc[n_bins + bi] += g.c_norm * px * py * g.zt;
            }
          }
        }
      },
      add_vec);

  // Penalty: mean squared utilization excess over both dies. Excess slots are
  // per-bin (disjoint writes); the loss itself is a deterministic chunked sum.
  auto excess = std::make_shared<std::vector<double>>(2 * n_bins, 0.0);
  double loss = util::parallel_reduce(
      0, static_cast<std::int64_t>(2 * n_bins), 8192, 0.0,
      [&](std::int64_t b, std::int64_t e, double& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto bi = static_cast<std::size_t>(i);
          const double rho = density[bi] / bin_area;
          const double ex = std::max(rho - target_util, 0.0);
          (*excess)[bi] = ex;
          acc += ex * ex;
        }
      },
      [](double& into, const double& from) { into += from; });
  loss /= static_cast<double>(2 * n_bins);

  auto backward = [geoms, excess, outline, bins_x, bins_y, wv_x, wv_y, bin_area,
                   n_bins](nn::Node& node) {
    nn::Node& px_node = *node.parents[0];
    nn::Node& py_node = *node.parents[1];
    nn::Node& pz_node = *node.parents[2];
    const float g = node.grad[0];
    const double scale = 2.0 / (static_cast<double>(2 * n_bins) * bin_area);

    auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
    auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

    std::vector<double> gx(geoms->size(), 0.0), gy(geoms->size(), 0.0),
        gz(geoms->size(), 0.0);
    // Each cell reads shared excess bins but writes only its own gradient
    // slots, so the chunks are disjoint without buffering.
    util::parallel_for(
        0, static_cast<std::int64_t>(geoms->size()), 256,
        [&](std::int64_t cb, std::int64_t ce) {
          for (std::int64_t i = cb; i < ce; ++i) {
            const auto ci = static_cast<std::size_t>(i);
            const CellGeom& geo = (*geoms)[ci];
            if (!geo.active || geo.c_norm == 0.0) continue;
            for (int bx = geo.b0x; bx <= geo.b1x; ++bx) {
              const double dx = geo.cx - bin_center_x(bx);
              const double pxv = bell_potential(dx, geo.wb_x, wv_x);
              const double dpx = bell_potential_grad(dx, geo.wb_x, wv_x);
              for (int by = geo.b0y; by <= geo.b1y; ++by) {
                const double dy = geo.cy - bin_center_y(by);
                const double pyv = bell_potential(dy, geo.wb_y, wv_y);
                const double dpy = bell_potential_grad(dy, geo.wb_y, wv_y);
                const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
                const double e_bot = (*excess)[bi];
                const double e_top = (*excess)[n_bins + bi];
                const double w_mix = e_bot * (1.0 - geo.zt) + e_top * geo.zt;
                gx[ci] += scale * w_mix * geo.c_norm * dpx * pyv;
                gy[ci] += scale * w_mix * geo.c_norm * pxv * dpy;
                gz[ci] += scale * (e_top - e_bot) * geo.c_norm * pxv * pyv;
              }
            }
          }
        });
    auto flush = [g](nn::Node& p, const std::vector<double>& vec) {
      if (!p.requires_grad) return;
      p.ensure_grad();
      auto dst = p.grad.data();
      for (std::size_t i = 0; i < vec.size(); ++i)
        dst[i] += g * static_cast<float>(vec[i]);
    };
    flush(px_node, gx);
    flush(py_node, gy);
    flush(pz_node, gz);
  };

  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)), {x, y, z},
                       std::move(backward));
}

namespace {

/// Shared bell-potential scatter machinery for the K-tier density-style
/// losses (overlap / thermal). Computes per-cell geometry, bin windows, and
/// the area-normalization constant c_v of Eq. (10).
struct BellGeom {
  double cx, cy, wb_x, wb_y, c_norm;
  int b0x, b1x, b0y, b1y;
  bool active;
};

BellGeom bell_geometry(const Netlist& netlist, std::size_t ci, double x,
                       double y, const Rect& outline, int bins_x, int bins_y,
                       double wv_x, double wv_y) {
  BellGeom g{};
  const auto id = static_cast<CellId>(ci);
  const CellType& t = netlist.cell_type(id);
  g.active = netlist.is_movable(id) && t.area() > 0.0;
  if (!g.active) return g;
  g.wb_x = std::max(t.width * 0.5, 1e-6);
  g.wb_y = std::max(t.height * 0.5, 1e-6);
  g.cx = x + t.width * 0.5;
  g.cy = y + t.height * 0.5;
  const double rx = 2.0 * g.wb_x + wv_x * 0.5;
  const double ry = 2.0 * g.wb_y + wv_y * 0.5;
  g.b0x = std::clamp(static_cast<int>((g.cx - rx - outline.xlo) / wv_x), 0, bins_x - 1);
  g.b1x = std::clamp(static_cast<int>((g.cx + rx - outline.xlo) / wv_x), 0, bins_x - 1);
  g.b0y = std::clamp(static_cast<int>((g.cy - ry - outline.ylo) / wv_y), 0, bins_y - 1);
  g.b1y = std::clamp(static_cast<int>((g.cy + ry - outline.ylo) / wv_y), 0, bins_y - 1);
  double raw = 0.0;
  for (int bx = g.b0x; bx <= g.b1x; ++bx)
    for (int by = g.b0y; by <= g.b1y; ++by)
      raw += bell_potential(g.cx - (outline.xlo + (bx + 0.5) * wv_x), g.wb_x, wv_x) *
             bell_potential(g.cy - (outline.ylo + (by + 0.5) * wv_y), g.wb_y, wv_y);
  g.c_norm = raw > 1e-12 ? t.area() / raw : 0.0;
  return g;
}

}  // namespace

nn::Var overlap_loss(const Netlist& netlist, const nn::Var& x, const nn::Var& y,
                     const std::vector<nn::Var>& p, const Rect& outline,
                     int bins_x, int bins_y, double target_util) {
  assert(p.size() >= 2);
  const int K = static_cast<int>(p.size());
  const auto n = static_cast<std::size_t>(netlist.num_cells());
  const double wv_x = outline.width() / bins_x;
  const double wv_y = outline.height() / bins_y;
  const double bin_area = wv_x * wv_y;
  const std::size_t n_bins = static_cast<std::size_t>(bins_x) * bins_y;
  const std::size_t all_bins = static_cast<std::size_t>(K) * n_bins;

  auto xs = std::as_const(x->value).data();
  auto ys = std::as_const(y->value).data();
  std::vector<std::span<const float>> ps(static_cast<std::size_t>(K));
  for (int t = 0; t < K; ++t)
    ps[static_cast<std::size_t>(t)] =
        std::as_const(p[static_cast<std::size_t>(t)]->value).data();

  auto geoms = std::make_shared<std::vector<BellGeom>>(n);
  auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
  auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

  // Forward: densities laid out [tier0 bins..., tier1 bins..., ...].
  std::vector<double> density = util::parallel_reduce(
      0, static_cast<std::int64_t>(n),
      util::grain_for_chunks(static_cast<std::int64_t>(n), kScatterChunks),
      std::vector<double>(all_bins, 0.0),
      [&](std::int64_t cb, std::int64_t ce, std::vector<double>& acc) {
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          BellGeom& g = (*geoms)[ci];
          g = bell_geometry(netlist, ci, xs[ci], ys[ci], outline, bins_x,
                            bins_y, wv_x, wv_y);
          if (!g.active) continue;
          for (int bx = g.b0x; bx <= g.b1x; ++bx) {
            const double px = bell_potential(g.cx - bin_center_x(bx), g.wb_x, wv_x);
            for (int by = g.b0y; by <= g.b1y; ++by) {
              const double py = bell_potential(g.cy - bin_center_y(by), g.wb_y, wv_y);
              const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
              for (int t = 0; t < K; ++t) {
                const double pt = std::clamp(
                    static_cast<double>(ps[static_cast<std::size_t>(t)][ci]),
                    0.0, 1.0);
                acc[static_cast<std::size_t>(t) * n_bins + bi] +=
                    g.c_norm * px * py * pt;
              }
            }
          }
        }
      },
      add_vec);

  auto excess = std::make_shared<std::vector<double>>(all_bins, 0.0);
  double loss = util::parallel_reduce(
      0, static_cast<std::int64_t>(all_bins), 8192, 0.0,
      [&](std::int64_t b, std::int64_t e, double& acc) {
        for (std::int64_t i = b; i < e; ++i) {
          const auto bi = static_cast<std::size_t>(i);
          const double rho = density[bi] / bin_area;
          const double ex = std::max(rho - target_util, 0.0);
          (*excess)[bi] = ex;
          acc += ex * ex;
        }
      },
      [](double& into, const double& from) { into += from; });
  loss /= static_cast<double>(all_bins);

  auto backward = [geoms, excess, outline, bins_x, bins_y, wv_x, wv_y, bin_area,
                   n_bins, K](nn::Node& node) {
    nn::Node& px_node = *node.parents[0];
    nn::Node& py_node = *node.parents[1];
    const float g = node.grad[0];
    const double scale =
        2.0 / (static_cast<double>(K) * static_cast<double>(n_bins) * bin_area);

    auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
    auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

    const auto n = geoms->size();
    std::vector<double> gx(n, 0.0), gy(n, 0.0);
    std::vector<std::vector<double>> gp(static_cast<std::size_t>(K),
                                        std::vector<double>(n, 0.0));
    util::parallel_for(
        0, static_cast<std::int64_t>(n), 256,
        [&](std::int64_t cb, std::int64_t ce) {
          for (std::int64_t i = cb; i < ce; ++i) {
            const auto ci = static_cast<std::size_t>(i);
            const BellGeom& geo = (*geoms)[ci];
            if (!geo.active || geo.c_norm == 0.0) continue;
            for (int bx = geo.b0x; bx <= geo.b1x; ++bx) {
              const double dx = geo.cx - bin_center_x(bx);
              const double pxv = bell_potential(dx, geo.wb_x, wv_x);
              const double dpx = bell_potential_grad(dx, geo.wb_x, wv_x);
              for (int by = geo.b0y; by <= geo.b1y; ++by) {
                const double dy = geo.cy - bin_center_y(by);
                const double pyv = bell_potential(dy, geo.wb_y, wv_y);
                const double dpy = bell_potential_grad(dy, geo.wb_y, wv_y);
                const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
                double w_mix = 0.0;
                for (int t = 0; t < K; ++t) {
                  const double e_t =
                      (*excess)[static_cast<std::size_t>(t) * n_bins + bi];
                  const double pt = std::clamp(
                      static_cast<double>(
                          node.parents[static_cast<std::size_t>(2 + t)]
                              ->value[static_cast<std::int64_t>(ci)]),
                      0.0, 1.0);
                  w_mix += e_t * pt;
                  gp[static_cast<std::size_t>(t)][ci] +=
                      scale * e_t * geo.c_norm * pxv * pyv;
                }
                gx[ci] += scale * w_mix * geo.c_norm * dpx * pyv;
                gy[ci] += scale * w_mix * geo.c_norm * pxv * dpy;
              }
            }
          }
        });
    auto flush = [g](nn::Node& pnode, const std::vector<double>& vec) {
      if (!pnode.requires_grad) return;
      pnode.ensure_grad();
      auto dst = pnode.grad.data();
      for (std::size_t i = 0; i < vec.size(); ++i)
        dst[i] += g * static_cast<float>(vec[i]);
    };
    flush(px_node, gx);
    flush(py_node, gy);
    for (int t = 0; t < K; ++t)
      flush(*node.parents[static_cast<std::size_t>(2 + t)],
            gp[static_cast<std::size_t>(t)]);
  };

  std::vector<nn::Var> parents = {x, y};
  parents.insert(parents.end(), p.begin(), p.end());
  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)), parents,
                       std::move(backward));
}

nn::Var thermal_density_loss(const Netlist& netlist, const nn::Var& x,
                             const nn::Var& y, const std::vector<nn::Var>& p,
                             const nn::Tensor& cell_power, const Rect& outline,
                             int bins_x, int bins_y) {
  assert(p.size() >= 2);
  const int K = static_cast<int>(p.size());
  const auto n = static_cast<std::size_t>(netlist.num_cells());
  assert(cell_power.numel() == static_cast<std::int64_t>(n));
  const double wv_x = outline.width() / bins_x;
  const double wv_y = outline.height() / bins_y;
  const double bin_area = wv_x * wv_y;
  const std::size_t n_bins = static_cast<std::size_t>(bins_x) * bins_y;

  auto xs = std::as_const(x->value).data();
  auto ys = std::as_const(y->value).data();
  std::vector<std::span<const float>> ps(static_cast<std::size_t>(K));
  for (int t = 0; t < K; ++t)
    ps[static_cast<std::size_t>(t)] =
        std::as_const(p[static_cast<std::size_t>(t)]->value).data();

  // Expected tier-depth weight per cell: depth_i = sum_t (t+1)/K * p_t(i).
  auto depth = std::make_shared<std::vector<double>>(n, 0.0);
  auto power = std::make_shared<std::vector<double>>(n, 0.0);
  for (std::size_t ci = 0; ci < n; ++ci) {
    double d = 0.0;
    for (int t = 0; t < K; ++t)
      d += (static_cast<double>(t) + 1.0) / static_cast<double>(K) *
           std::clamp(static_cast<double>(ps[static_cast<std::size_t>(t)][ci]),
                      0.0, 1.0);
    (*depth)[ci] = d;
    (*power)[ci] = static_cast<double>(cell_power[static_cast<std::int64_t>(ci)]);
  }

  auto geoms = std::make_shared<std::vector<BellGeom>>(n);
  auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
  auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

  // Normalize potentials to unit mass times power (c_norm is area-normalized;
  // rescale by power/area so the scattered mass integrates to cell power).
  std::vector<double> heat = util::parallel_reduce(
      0, static_cast<std::int64_t>(n),
      util::grain_for_chunks(static_cast<std::int64_t>(n), kScatterChunks),
      std::vector<double>(n_bins, 0.0),
      [&](std::int64_t cb, std::int64_t ce, std::vector<double>& acc) {
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto ci = static_cast<std::size_t>(i);
          BellGeom& g = (*geoms)[ci];
          g = bell_geometry(netlist, ci, xs[ci], ys[ci], outline, bins_x,
                            bins_y, wv_x, wv_y);
          if (!g.active || g.c_norm == 0.0 || (*power)[ci] <= 0.0) continue;
          const CellType& t = netlist.cell_type(static_cast<CellId>(ci));
          const double q = g.c_norm * (*power)[ci] / t.area();
          for (int bx = g.b0x; bx <= g.b1x; ++bx) {
            const double px = bell_potential(g.cx - bin_center_x(bx), g.wb_x, wv_x);
            for (int by = g.b0y; by <= g.b1y; ++by) {
              const double py = bell_potential(g.cy - bin_center_y(by), g.wb_y, wv_y);
              const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
              acc[bi] += q * (*depth)[ci] * px * py / bin_area;
            }
          }
        }
      },
      add_vec);

  auto heat_sh = std::make_shared<std::vector<double>>(std::move(heat));
  double loss = 0.0;
  for (double hv : *heat_sh) loss += hv * hv;
  loss /= static_cast<double>(n_bins);

  auto backward = [geoms, heat_sh, depth, power, outline, bins_x, bins_y, wv_x,
                   wv_y, bin_area, n_bins, K, nlp = &netlist](nn::Node& node) {
    nn::Node& px_node = *node.parents[0];
    nn::Node& py_node = *node.parents[1];
    const float g = node.grad[0];
    const double scale = 2.0 / (static_cast<double>(n_bins) * bin_area);

    auto bin_center_x = [&](int b) { return outline.xlo + (b + 0.5) * wv_x; };
    auto bin_center_y = [&](int b) { return outline.ylo + (b + 0.5) * wv_y; };

    const auto n = geoms->size();
    std::vector<double> gx(n, 0.0), gy(n, 0.0), gd(n, 0.0);
    util::parallel_for(
        0, static_cast<std::int64_t>(n), 256,
        [&](std::int64_t cb, std::int64_t ce) {
          for (std::int64_t i = cb; i < ce; ++i) {
            const auto ci = static_cast<std::size_t>(i);
            const BellGeom& geo = (*geoms)[ci];
            if (!geo.active || geo.c_norm == 0.0 || (*power)[ci] <= 0.0) continue;
            const CellType& t = nlp->cell_type(static_cast<CellId>(ci));
            const double q = geo.c_norm * (*power)[ci] / t.area();
            for (int bx = geo.b0x; bx <= geo.b1x; ++bx) {
              const double dx = geo.cx - bin_center_x(bx);
              const double pxv = bell_potential(dx, geo.wb_x, wv_x);
              const double dpx = bell_potential_grad(dx, geo.wb_x, wv_x);
              for (int by = geo.b0y; by <= geo.b1y; ++by) {
                const double dy = geo.cy - bin_center_y(by);
                const double pyv = bell_potential(dy, geo.wb_y, wv_y);
                const double dpy = bell_potential_grad(dy, geo.wb_y, wv_y);
                const auto bi = static_cast<std::size_t>(by) * bins_x + bx;
                const double hv = (*heat_sh)[bi];
                gx[ci] += scale * hv * q * (*depth)[ci] * dpx * pyv;
                gy[ci] += scale * hv * q * (*depth)[ci] * pxv * dpy;
                gd[ci] += scale * hv * q * pxv * pyv;
              }
            }
          }
        });
    auto flush = [g](nn::Node& pnode, const std::vector<double>& vec) {
      if (!pnode.requires_grad) return;
      pnode.ensure_grad();
      auto dst = pnode.grad.data();
      for (std::size_t i = 0; i < vec.size(); ++i)
        dst[i] += g * static_cast<float>(vec[i]);
    };
    flush(px_node, gx);
    flush(py_node, gy);
    // d(depth_i)/dp_t(i) = (t+1)/K.
    for (int t = 0; t < K; ++t) {
      nn::Node& pt = *node.parents[static_cast<std::size_t>(2 + t)];
      if (!pt.requires_grad) continue;
      pt.ensure_grad();
      auto dst = pt.grad.data();
      const double wt = (static_cast<double>(t) + 1.0) / static_cast<double>(K);
      for (std::size_t i = 0; i < n; ++i)
        dst[i] += g * static_cast<float>(gd[i] * wt);
    }
  };

  std::vector<nn::Var> parents = {x, y};
  parents.insert(parents.end(), p.begin(), p.end());
  return nn::make_node(nn::Tensor::scalar(static_cast<float>(loss)), parents,
                       std::move(backward));
}

nn::Var congestion_loss(const nn::SiameseUNet& model, const SoftMaps& maps) {
  if (maps.num_tiers == 2) {
    auto [c_top, c_bot] = model.forward(maps.top(), maps.bottom());
    nn::Var zero_t = nn::make_leaf(nn::Tensor(c_top->value.shape()));
    nn::Var zero_b = nn::make_leaf(nn::Tensor(c_bot->value.shape()));
    return nn::siamese_loss(c_top, zero_t, c_bot, zero_b);
  }
  std::vector<nn::Var> f;
  f.reserve(static_cast<std::size_t>(maps.num_tiers));
  for (int t = 0; t < maps.num_tiers; ++t) f.push_back(maps.tier(t));
  std::vector<nn::Var> preds = model.forward_n(f);
  std::vector<nn::Var> zeros;
  zeros.reserve(preds.size());
  for (const nn::Var& c : preds)
    zeros.push_back(nn::make_leaf(nn::Tensor(c->value.shape())));
  return nn::siamese_loss_n(preds, zeros);
}

nn::Var congestion_loss(const Predictor& predictor, const SoftMaps& maps) {
  if (maps.num_tiers == 2) {
    auto [c_top, c_bot] =
        predictor.model->forward(predictor.normalize_features(maps.top()),
                                 predictor.normalize_features(maps.bottom()));
    nn::Var zero_t = nn::make_leaf(nn::Tensor(c_top->value.shape()));
    nn::Var zero_b = nn::make_leaf(nn::Tensor(c_bot->value.shape()));
    return nn::siamese_loss(c_top, zero_t, c_bot, zero_b);
  }
  std::vector<nn::Var> f;
  f.reserve(static_cast<std::size_t>(maps.num_tiers));
  for (int t = 0; t < maps.num_tiers; ++t)
    f.push_back(predictor.normalize_features(maps.tier(t)));
  std::vector<nn::Var> preds = predictor.model->forward_n(f);
  std::vector<nn::Var> zeros;
  zeros.reserve(preds.size());
  for (const nn::Var& c : preds)
    zeros.push_back(nn::make_leaf(nn::Tensor(c->value.shape())));
  return nn::siamese_loss_n(preds, zeros);
}

}  // namespace dco3d
