#pragma once
// DCO-3D: Differentiable Congestion Optimization (Algorithm 2).
//
// Starting from a Pin-3D 3D global placement, a GNN spreader proposes
// refined (x, y, z) per cell; soft feature maps of both dies are built from
// the proposal and pushed through a frozen, pre-trained Siamese UNet to
// predict post-route congestion. The total loss
//   L = alpha * L_disp + beta * L_ovlp + gamma * L_cut + delta * L_cong
// is backpropagated (through the custom Eq. (6) map gradients) into the GNN
// weights and minimized with Adam. The best iterate is committed with hard
// tier assignment z >= 0.5.

#include <vector>

#include "core/guard.hpp"
#include "core/spreader.hpp"
#include "place/params.hpp"
#include "route/router.hpp"
#include "core/trainer.hpp"
#include "grid/gcell_grid.hpp"
#include "netlist/netlist.hpp"
#include "nn/unet.hpp"
#include "timing/sta.hpp"

namespace dco3d {

struct DcoConfig {
  int max_iter = 80;
  float lr = 1.2e-2f;
  // Loss weights of Algorithm 2, tuned on the LDPC benchmark (see
  // bench_table3_main): displacement keeps the optimizer near the Pin-3D
  // placement (preserving QoR), a light overlap term guards density, the
  // cutsize term regularizes cross-die moves, and the congestion term
  // (through the frozen predictor) drives the actual optimization. The
  // exploration can afford to be aggressive because candidate commitment is
  // gated by trial routing (select_by_route below).
  float alpha_disp = 2.0f;
  float beta_ovlp = 0.5f;
  float gamma_cut = 1.5f;
  float delta_cong = 10.0f;
  SpreaderConfig spreader;
  // Map resolution; must match the predictor's input H/W.
  int grid_nx = 64;
  int grid_ny = 64;
  double overlap_target_util = 0.75;
  int overlap_bins = 24;
  // Optional thermal-density channel (K-tier stacks): weight of the
  // depth-weighted power-density penalty. 0 disables it (the default, which
  // keeps the classic two-die loss composition bit-identical).
  float epsilon_thermal = 0.0f;
  double convergence_eps = 1e-4;  // stop when the loss plateaus
  int patience = 50;
  // Candidate-evaluation cadence: every eval_every iterations the current
  // hard assignment is scored (see run_dco); the best-scoring candidate
  // (including the untouched input) is committed.
  int eval_every = 5;
  // Independent GNN re-initializations; the best candidate across all
  // restarts is committed (trial-route gated, so restarts only add upside).
  int restarts = 2;
  // Candidate scoring. The gradient steps follow the paper exactly (losses
  // through the frozen predictor); which iterate to COMMIT is decided by a
  // trial global route of the hard assignment when select_by_route is true
  // (cheap in a global-routing flow, and immune to the adversarial drift a
  // learned proxy is subject to), falling back to the predictor's score on
  // hard feature maps otherwise.
  bool select_by_route = true;
  RouterConfig router;             // used when select_by_route
  PlacementParams legalize_params; // legalization before the trial route
  std::uint64_t seed = 17;
  // Wall-clock budget for the whole call (all restarts); 0 = unlimited. On
  // expiry the best candidate committed so far (at minimum the input
  // placement) is returned immediately.
  double deadline_ms = 0.0;
  // Non-finite recovery (docs/robustness.md): a diverged iterate never
  // touches the committed candidate; depending on policy the step is
  // skipped, the spreader is rolled back with a halved LR, or — once the
  // backoff budget is spent — the offending restart is re-initialized with
  // fresh weights (bounded by guard.max_reseeds).
  GuardConfig guard;
};

struct DcoIterate {
  int iter = 0;
  double total = 0.0, disp = 0.0, ovlp = 0.0, cut = 0.0, cong = 0.0;
  double therm = 0.0;  // thermal-density term (0 unless epsilon_thermal > 0)
};

struct DcoResult {
  Placement3D placement;            // optimized 3D placement (hard tiers)
  std::vector<DcoIterate> trace;    // per-iteration losses
  int best_iter = 0;                // iteration of the committed candidate
  double best_loss = 0.0;           // predictor score of the committed result
  double initial_score = 0.0;       // predictor score of the input placement
  bool improved = false;            // false = input returned unchanged
  std::size_t cells_moved_tier = 0; // cells whose tier changed vs input
  GuardStats guard;                 // recovery events during the run
};

/// Run Algorithm 2. `predictor` is the trained congestion predictor (frozen:
/// its parameters receive no updates, only gradients flow *through* it; its
/// feature normalization is applied to the soft maps). `timing_cfg` supplies
/// the Table-II node features.
DcoResult run_dco(const Netlist& netlist, const Placement3D& initial,
                  const Predictor& predictor, const TimingConfig& timing_cfg,
                  const DcoConfig& cfg);

}  // namespace dco3d
