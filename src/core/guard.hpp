#pragma once
// Run guardrails for the long-running gradient pipelines (Alg. 1 training
// and the Alg. 2 DCO loop): non-finite detection with configurable recovery
// policies, wall-clock deadlines with graceful early commit, parameter
// snapshots for rollback, and a deterministic fault-injection hook so every
// recovery path can be exercised in ctest. See docs/robustness.md.

#include <array>
#include <chrono>
#include <mutex>
#include <span>
#include <vector>

#include "nn/autograd.hpp"
#include "util/status.hpp"

namespace dco3d {

// ---------------------------------------------------------------------------
// Non-finite detection.

bool all_finite(std::span<const float> xs);
bool all_finite(const nn::Tensor& t);
/// All parameter *values* finite.
bool params_finite(const std::vector<nn::Var>& params);
/// All parameter *gradients* finite. Parameters whose grad buffer was never
/// allocated count as finite (they received no gradient).
bool grads_finite(const std::vector<nn::Var>& params);

// ---------------------------------------------------------------------------
// Recovery policy.

enum class NanPolicy {
  kSkip,     // drop the offending step and carry on
  kHalveLr,  // drop the step and halve the learning rate (bounded backoff)
  kRollback, // restore the last good snapshot, then back off the LR
};

struct GuardConfig {
  NanPolicy nan_policy = NanPolicy::kHalveLr;
  int max_lr_halvings = 4;  // backoff budget per run (trainer) / restart (DCO)
  int max_reseeds = 2;      // DCO only: re-initializations of a diverged restart
  // Escalate every guardrail event into a StatusError (kNumericalError)
  // instead of recovering. CLI --strict maps here.
  bool strict = false;
};

/// Counters reported back to the caller; merged into the run result so flows
/// can surface "this run recovered from N anomalies".
struct GuardStats {
  int nan_events = 0;      // non-finite loss/grad/param detections
  int skipped_steps = 0;   // gradient steps dropped
  int lr_halvings = 0;
  int rollbacks = 0;       // snapshot restores
  int reseeds = 0;         // DCO restarts re-initialized after divergence
  bool deadline_hit = false;

  void merge(const GuardStats& o) {
    nan_events += o.nan_events;
    skipped_steps += o.skipped_steps;
    lr_halvings += o.lr_halvings;
    rollbacks += o.rollbacks;
    reseeds += o.reseeds;
    deadline_hit = deadline_hit || o.deadline_hit;
  }
  bool clean() const {
    return nan_events == 0 && skipped_steps == 0 && lr_halvings == 0 &&
           rollbacks == 0 && reseeds == 0 && !deadline_hit;
  }
};

// ---------------------------------------------------------------------------
// Wall-clock deadline.

class Deadline {
 public:
  /// budget_ms <= 0 means unlimited.
  explicit Deadline(double budget_ms = 0.0)
      : start_(std::chrono::steady_clock::now()), budget_ms_(budget_ms) {}

  bool unlimited() const { return budget_ms_ <= 0.0; }
  double budget_ms() const { return budget_ms_; }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  bool expired() const { return !unlimited() && elapsed_ms() >= budget_ms_; }

 private:
  std::chrono::steady_clock::time_point start_;
  double budget_ms_;
};

// ---------------------------------------------------------------------------
// Parameter snapshots for rollback. capture() and restore() are O(1) per
// tensor: the snapshot aliases the parameter storage, and the optimizer's
// next in-place update copy-on-writes the parameter away from it, so the
// captured bits stay frozen without an eager deep copy.

class ParamSnapshot {
 public:
  ParamSnapshot() = default;
  explicit ParamSnapshot(const std::vector<nn::Var>& params) { capture(params); }

  void capture(const std::vector<nn::Var>& params);
  /// Restore into `params`; they must match the captured count and shapes.
  void restore(const std::vector<nn::Var>& params) const;
  bool empty() const { return values_.empty(); }

 private:
  std::vector<nn::Tensor> values_;
};

// ---------------------------------------------------------------------------
// Fault injection (test hook).

enum class FaultSite : int {
  kTrainerLoss = 0,  // flip the sample loss to NaN
  kTrainerGrad,      // corrupt a parameter gradient after backward
  kDcoLoss,          // flip the DCO total loss to NaN
  kDcoGrad,          // corrupt a spreader gradient
  kCheckpointWrite,  // abort save_predictor mid-stream
  kFlowStageFail,    // pipeline stage throws before its body runs
  kFlowStageStall,   // pipeline stage sleeps param() ms before its body runs
  kArtifactWrite,    // save_flow_artifact fails after the tmp write, before
                     // the rename (simulated crash: stale *.tmp left behind)
};
inline constexpr int kNumFaultSites = 8;

/// Deterministic fault injector: compiled in, inert unless armed (production
/// flows never arm it). Each site keeps a consult counter; a fault fires on
/// the armed consult index, for `count` consecutive consults. Consults are
/// thread-safe (flow/server sites are consulted from concurrent job lanes);
/// arm/disarm still only from test code, between runs.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Fire `count` faults at `site`, starting at the `step`-th time that site
  /// is consulted (0-based), counted from the last arm/disarm. `param` is a
  /// site-specific knob (kFlowStageStall: stall duration in ms).
  void arm(FaultSite site, int step, int count = 1, double param = 0.0);
  /// Reset all sites, counters, and fired tallies.
  void disarm();

  bool armed(FaultSite site) const;
  /// Consult the injector: advances the site counter and reports whether a
  /// fault fires at this consult. Always false when the site is not armed.
  bool should_fire(FaultSite site);
  /// should_fire + poke a NaN into t[0] when firing. Returns true if t was
  /// corrupted.
  bool maybe_corrupt(FaultSite site, nn::Tensor& t);
  /// How many faults actually fired at `site` since the last arm/disarm.
  int fired(FaultSite site) const;
  /// The site-specific parameter set at arm time.
  double param(FaultSite site) const;

 private:
  FaultInjector() = default;
  bool should_fire_locked(FaultSite site);
  struct Site {
    bool armed = false;
    int fire_at = 0;
    int count = 0;
    int consults = 0;
    int fired = 0;
    double param = 0.0;
  };
  mutable std::mutex mu_;
  std::array<Site, kNumFaultSites> sites_{};
};

}  // namespace dco3d
