#include "core/features.hpp"

#include <cmath>

namespace dco3d {

nn::Tensor build_gnn_features(const Netlist& netlist, const Placement3D& placement,
                              const TimingConfig& timing_cfg) {
  const auto n = static_cast<std::int64_t>(netlist.num_cells());
  const TimingResult t = run_sta(netlist, placement, timing_cfg);

  // Driving-net index per cell.
  std::vector<NetId> out_net(netlist.num_cells(), -1);
  for (std::size_t ni = 0; ni < netlist.num_nets(); ++ni)
    out_net[static_cast<std::size_t>(
        netlist.net_driver(static_cast<NetId>(ni)).cell)] = static_cast<NetId>(ni);

  nn::Tensor f({n, kGnnFeatureDim});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    const auto id = static_cast<CellId>(i);
    const CellType& ct = netlist.cell_type(id);
    f.at(i, 0) = static_cast<float>(t.cell_slack[ci]);
    f.at(i, 1) = static_cast<float>(t.cell_out_slew[ci]);
    f.at(i, 2) = static_cast<float>(t.cell_in_slew[ci]);
    f.at(i, 3) = out_net[ci] >= 0
                     ? static_cast<float>(
                           t.net_switch_mw[static_cast<std::size_t>(out_net[ci])])
                     : 0.0f;
    const double f_ghz = 1000.0 / timing_cfg.clock_period_ps;
    f.at(i, 4) = static_cast<float>(timing_cfg.activity * ct.internal_energy *
                                    f_ghz * 1e-3);
    f.at(i, 5) = static_cast<float>(ct.leakage * 1e-6);
    f.at(i, 6) = static_cast<float>(ct.width);
    f.at(i, 7) = static_cast<float>(ct.height);
    f.at(i, 8) = static_cast<float>((placement.xy[ci].x - placement.outline.xlo) /
                                    placement.outline.width());
    f.at(i, 9) = static_cast<float>((placement.xy[ci].y - placement.outline.ylo) /
                                    placement.outline.height());
    // Tier id mapped to [-1, 1]; exactly +-1 for the two-die stack.
    f.at(i, 10) =
        placement.num_tiers > 1
            ? 2.0f * static_cast<float>(placement.tier[ci]) /
                      static_cast<float>(placement.num_tiers - 1) -
                  1.0f
            : 0.0f;
  }

  // Z-score normalize the Table-II columns (0..7) over movable cells.
  for (std::int64_t c = 0; c < 8; ++c) {
    double mean = 0.0, count = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (!netlist.is_movable(static_cast<CellId>(i))) continue;
      mean += f.at(i, c);
      count += 1.0;
    }
    if (count < 1.0) continue;
    mean /= count;
    double var = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (!netlist.is_movable(static_cast<CellId>(i))) continue;
      const double d = f.at(i, c) - mean;
      var += d * d;
    }
    const double stddev = std::sqrt(var / count);
    const double inv = stddev > 1e-9 ? 1.0 / stddev : 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      f.at(i, c) = static_cast<float>((f.at(i, c) - mean) * inv);
  }
  return f;
}

}  // namespace dco3d
