#include "core/spreader.hpp"

#include <algorithm>

#include "core/features.hpp"
#include "nn/ops.hpp"

namespace dco3d {

GnnSpreader::GnnSpreader(const Netlist& netlist, const Placement3D& initial,
                         const SpreaderConfig& cfg, Rng& rng)
    : netlist_(netlist),
      cfg_(cfg),
      num_tiers_(initial.num_tiers),
      // Output head: (dx, dy) plus K-1 stick logits — 3 columns for the
      // classic two-tier stack, so weight shapes and RNG draws are unchanged.
      gcn_(kGnnFeatureDim, cfg.hidden,
           2 + static_cast<std::int64_t>(initial.num_tiers - 1), rng),
      outline_(initial.outline) {
  adj_ = std::make_shared<const nn::Csr>(nn::normalized_adjacency(
      static_cast<std::int64_t>(netlist.num_cells()), netlist.cell_graph_edges()));

  const auto n = static_cast<std::int64_t>(netlist.num_cells());
  x0_ = nn::Tensor({n});
  y0_ = nn::Tensor({n});
  mask_ = nn::Tensor({n});
  fixed_tier_ = nn::Tensor({n});
  tier_bias_ = nn::Tensor({n});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    const auto id = static_cast<CellId>(i);
    x0_[i] = static_cast<float>(initial.xy[ci].x);
    y0_[i] = static_cast<float>(initial.xy[ci].y);
    const bool movable = netlist.is_movable(id);
    mask_[i] = movable ? 1.0f : 0.0f;
    fixed_tier_[i] = initial.tier[ci] ? 1.0f : 0.0f;
    // Bias the soft z toward the initial FM assignment so optimization
    // starts from the Pin-3D tier partition rather than 50/50.
    tier_bias_[i] = initial.tier[ci] ? 1.2f : -1.2f;
  }
  if (num_tiers_ > 2) {
    // Stick j decides P(T > j | T >= j): bias each stick so the product
    // chain peaks at the cell's initial tier.
    stick_bias_.assign(static_cast<std::size_t>(num_tiers_ - 1), nn::Tensor({n}));
    fixed_onehot_.assign(static_cast<std::size_t>(num_tiers_), nn::Tensor({n}));
    init_tier_.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const auto ci = static_cast<std::size_t>(i);
      const int tier = std::clamp(initial.tier[ci], 0, num_tiers_ - 1);
      init_tier_[ci] = tier;
      for (int j = 0; j + 1 < num_tiers_; ++j)
        stick_bias_[static_cast<std::size_t>(j)][i] = j < tier ? 1.2f : -1.2f;
      if (!netlist.is_movable(static_cast<CellId>(i)))
        fixed_onehot_[static_cast<std::size_t>(tier)][i] = 1.0f;
    }
  }
}

SpreaderOutput GnnSpreader::forward(const nn::Var& features) const {
  nn::Var out = gcn_.forward(adj_, features);  // [N, 3]

  nn::Var mask = nn::make_leaf(mask_);
  nn::Var x0 = nn::make_leaf(x0_);
  nn::Var y0 = nn::make_leaf(y0_);

  const auto max_dx = static_cast<float>(cfg_.max_disp_frac * outline_.width());
  const auto max_dy = static_cast<float>(cfg_.max_disp_frac * outline_.height());

  // dx, dy: bounded by tanh; zeroed on fixed cells via the mask.
  nn::Var dx = nn::mul(nn::mul_scalar(nn::tanh_op(nn::select_column(out, 0)), max_dx), mask);
  nn::Var dy = nn::mul(nn::mul_scalar(nn::tanh_op(nn::select_column(out, 1)), max_dy), mask);

  SpreaderOutput so;
  so.x = nn::add(x0, dx);
  so.y = nn::add(y0, dy);

  if (num_tiers_ > 2) {
    if (cfg_.freeze_tier) {
      // 2D ablation: every cell keeps its input tier (hard one-hot p).
      so.p.reserve(static_cast<std::size_t>(num_tiers_));
      for (int t = 0; t < num_tiers_; ++t) {
        nn::Tensor hard(mask_.shape());
        for (std::int64_t i = 0; i < hard.numel(); ++i)
          hard[i] = init_tier_[static_cast<std::size_t>(i)] == t ? 1.0f : 0.0f;
        so.p.push_back(nn::make_leaf(hard));
      }
      return so;
    }
    // Stick-breaking relaxation: s_j = sigmoid(logit_j + bias_j) is the
    // survival odds past boundary j; S_j = prod_{q<=j} s_q; p_0 = 1 - S_0,
    // p_t = S_{t-1} - S_t, p_{K-1} = S_{K-2}. At K = 2 this is exactly the
    // single-sigmoid z (p_1 = sigmoid(logit + bias)).
    std::vector<nn::Var> survival(static_cast<std::size_t>(num_tiers_ - 1));
    for (int j = 0; j + 1 < num_tiers_; ++j) {
      nn::Var s = nn::sigmoid(
          nn::add(nn::select_column(out, 2 + j),
                  nn::make_leaf(stick_bias_[static_cast<std::size_t>(j)])));
      survival[static_cast<std::size_t>(j)] =
          j == 0 ? s : nn::mul(survival[static_cast<std::size_t>(j - 1)], s);
    }
    so.p.resize(static_cast<std::size_t>(num_tiers_));
    for (int t = 0; t < num_tiers_; ++t) {
      nn::Var soft;
      if (t == 0) {
        soft = nn::add_scalar(nn::mul_scalar(survival[0], -1.0f), 1.0f);
      } else if (t == num_tiers_ - 1) {
        soft = survival[static_cast<std::size_t>(t - 1)];
      } else {
        soft = nn::sub(survival[static_cast<std::size_t>(t - 1)],
                       survival[static_cast<std::size_t>(t)]);
      }
      // Pin fixed cells to their hard one-hot tier.
      nn::Var masked = nn::mul(soft, mask);
      so.p[static_cast<std::size_t>(t)] = nn::add(
          masked, nn::make_leaf(fixed_onehot_[static_cast<std::size_t>(t)]));
    }
    return so;
  }

  if (cfg_.freeze_tier) {
    // 2D ablation: every cell keeps its input tier (hard 0/1 z).
    so.z = nn::make_leaf(fixed_tier_);
    return so;
  }
  // z: sigmoid with an initial-tier logit bias; fixed cells pinned hard.
  nn::Var z_soft =
      nn::sigmoid(nn::add(nn::select_column(out, 2), nn::make_leaf(tier_bias_)));
  nn::Var z_masked = nn::mul(z_soft, mask);
  // (1 - mask) * fixed_tier for the pinned cells.
  nn::Tensor inv_mask(mask_.shape());
  for (std::int64_t i = 0; i < inv_mask.numel(); ++i)
    inv_mask[i] = (1.0f - mask_[i]) * fixed_tier_[i];
  so.z = nn::add(z_masked, nn::make_leaf(inv_mask));
  return so;
}

void GnnSpreader::commit(const SpreaderOutput& out, Placement3D& placement) const {
  const auto n = static_cast<std::size_t>(netlist_.num_cells());
  for (std::size_t ci = 0; ci < n; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist_.is_movable(id)) continue;
    placement.xy[ci].x = std::clamp(static_cast<double>(out.x->value[static_cast<std::int64_t>(ci)]),
                                    outline_.xlo, outline_.xhi);
    placement.xy[ci].y = std::clamp(static_cast<double>(out.y->value[static_cast<std::int64_t>(ci)]),
                                    outline_.ylo, outline_.yhi);
    if (num_tiers_ > 2) {
      // Hard tier assignment: most probable tier (ties to the lowest).
      int best = 0;
      for (int t = 1; t < num_tiers_; ++t)
        if (out.p[static_cast<std::size_t>(t)]->value[static_cast<std::int64_t>(ci)] >
            out.p[static_cast<std::size_t>(best)]->value[static_cast<std::int64_t>(ci)])
          best = t;
      placement.tier[ci] = best;
    } else {
      // Hard tier assignment: z >= 0.5 -> top die (§IV-A).
      placement.tier[ci] = out.z->value[static_cast<std::int64_t>(ci)] >= 0.5f ? 1 : 0;
    }
  }
}

}  // namespace dco3d
