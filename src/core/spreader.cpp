#include "core/spreader.hpp"

#include <algorithm>

#include "core/features.hpp"
#include "nn/ops.hpp"

namespace dco3d {

GnnSpreader::GnnSpreader(const Netlist& netlist, const Placement3D& initial,
                         const SpreaderConfig& cfg, Rng& rng)
    : netlist_(netlist),
      cfg_(cfg),
      gcn_(kGnnFeatureDim, cfg.hidden, 3, rng),
      outline_(initial.outline) {
  adj_ = std::make_shared<const nn::Csr>(nn::normalized_adjacency(
      static_cast<std::int64_t>(netlist.num_cells()), netlist.cell_graph_edges()));

  const auto n = static_cast<std::int64_t>(netlist.num_cells());
  x0_ = nn::Tensor({n});
  y0_ = nn::Tensor({n});
  mask_ = nn::Tensor({n});
  fixed_tier_ = nn::Tensor({n});
  tier_bias_ = nn::Tensor({n});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    const auto id = static_cast<CellId>(i);
    x0_[i] = static_cast<float>(initial.xy[ci].x);
    y0_[i] = static_cast<float>(initial.xy[ci].y);
    const bool movable = netlist.is_movable(id);
    mask_[i] = movable ? 1.0f : 0.0f;
    fixed_tier_[i] = initial.tier[ci] ? 1.0f : 0.0f;
    // Bias the soft z toward the initial FM assignment so optimization
    // starts from the Pin-3D tier partition rather than 50/50.
    tier_bias_[i] = initial.tier[ci] ? 1.2f : -1.2f;
  }
}

SpreaderOutput GnnSpreader::forward(const nn::Var& features) const {
  nn::Var out = gcn_.forward(adj_, features);  // [N, 3]

  nn::Var mask = nn::make_leaf(mask_);
  nn::Var x0 = nn::make_leaf(x0_);
  nn::Var y0 = nn::make_leaf(y0_);

  const auto max_dx = static_cast<float>(cfg_.max_disp_frac * outline_.width());
  const auto max_dy = static_cast<float>(cfg_.max_disp_frac * outline_.height());

  // dx, dy: bounded by tanh; zeroed on fixed cells via the mask.
  nn::Var dx = nn::mul(nn::mul_scalar(nn::tanh_op(nn::select_column(out, 0)), max_dx), mask);
  nn::Var dy = nn::mul(nn::mul_scalar(nn::tanh_op(nn::select_column(out, 1)), max_dy), mask);

  SpreaderOutput so;
  so.x = nn::add(x0, dx);
  so.y = nn::add(y0, dy);

  if (cfg_.freeze_tier) {
    // 2D ablation: every cell keeps its input tier (hard 0/1 z).
    so.z = nn::make_leaf(fixed_tier_);
    return so;
  }
  // z: sigmoid with an initial-tier logit bias; fixed cells pinned hard.
  nn::Var z_soft =
      nn::sigmoid(nn::add(nn::select_column(out, 2), nn::make_leaf(tier_bias_)));
  nn::Var z_masked = nn::mul(z_soft, mask);
  // (1 - mask) * fixed_tier for the pinned cells.
  nn::Tensor inv_mask(mask_.shape());
  for (std::int64_t i = 0; i < inv_mask.numel(); ++i)
    inv_mask[i] = (1.0f - mask_[i]) * fixed_tier_[i];
  so.z = nn::add(z_masked, nn::make_leaf(inv_mask));
  return so;
}

void GnnSpreader::commit(const SpreaderOutput& out, Placement3D& placement) const {
  const auto n = static_cast<std::size_t>(netlist_.num_cells());
  for (std::size_t ci = 0; ci < n; ++ci) {
    const auto id = static_cast<CellId>(ci);
    if (!netlist_.is_movable(id)) continue;
    placement.xy[ci].x = std::clamp(static_cast<double>(out.x->value[static_cast<std::int64_t>(ci)]),
                                    outline_.xlo, outline_.xhi);
    placement.xy[ci].y = std::clamp(static_cast<double>(out.y->value[static_cast<std::int64_t>(ci)]),
                                    outline_.ylo, outline_.yhi);
    // Hard tier assignment: z >= 0.5 -> top die (§IV-A).
    placement.tier[ci] = out.z->value[static_cast<std::int64_t>(ci)] >= 0.5f ? 1 : 0;
  }
}

}  // namespace dco3d
