#include "core/dco.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "core/features.hpp"
#include "core/losses.hpp"
#include "grid/feature_maps.hpp"
#include "grid/soft_maps.hpp"
#include "nn/optimizer.hpp"
#include "flow/cts.hpp"
#include "place/legalize.hpp"
#include "nn/ops.hpp"
#include "util/logging.hpp"

namespace dco3d {

namespace {

/// Predicted post-route congestion of a concrete (hard) placement: the
/// predictor applied exactly as at inference time. Used to select which DCO
/// iterate to commit — soft-map losses drive the gradients, but committing
/// is decided on in-distribution hard maps, and the initial placement is
/// always a candidate, so DCO never returns a placement the predictor
/// scores worse than its input.
double hard_predicted_congestion(const Netlist& netlist, const Placement3D& pl,
                                 const GCellGrid& grid,
                                 const Predictor& predictor) {
  FeatureMaps fm = compute_feature_maps(netlist, pl, grid);
  std::vector<nn::Var> f;
  f.reserve(fm.die.size());
  for (const nn::Tensor& d : fm.die)
    f.push_back(nn::make_leaf(predictor.normalize_features(d)));
  std::vector<nn::Var> preds = predictor.model->forward_n(f);
  auto rms = [](const nn::Tensor& t) {
    double s = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i)
      s += static_cast<double>(t[i]) * t[i];
    return std::sqrt(s / static_cast<double>(t.numel()));
  };
  double sum = 0.0;
  for (const nn::Var& c : preds) sum += rms(c->value);
  return sum / static_cast<double>(preds.size());
}

/// Trial-global-route score of a hard placement candidate (total overflow,
/// with wirelength as a tie-breaker at equal overflow). The trial replays
/// the downstream flow the candidate will actually see — CTS buses included
/// — so the committed placement wins where it counts, post-route.
double trial_route_score(const Netlist& netlist, const Placement3D& pl,
                         const GCellGrid& grid, const DcoConfig& cfg) {
  Netlist work = netlist;  // CTS inserts buffers/clock nets on a copy
  Placement3D legal = pl;
  run_cts(work, legal);
  legalize_all(work, legal, cfg.legalize_params);
  const RouteResult r = global_route(work, legal, grid, cfg.router);
  return r.total_overflow + 1e-5 * r.wirelength;
}

}  // namespace

DcoResult run_dco(const Netlist& netlist, const Placement3D& initial,
                  const Predictor& predictor, const TimingConfig& timing_cfg,
                  const DcoConfig& cfg) {
  Rng rng(cfg.seed);
  DcoResult res;
  res.placement = initial;

  // Node features (Table II) from the initial placement; the netlist graph
  // and features stay fixed while the GNN's weights are optimized.
  nn::Var features = nn::make_leaf(build_gnn_features(netlist, initial, timing_cfg));
  const GCellGrid grid(initial.outline, cfg.grid_nx, cfg.grid_ny);
  auto edges = std::make_shared<const std::vector<std::pair<std::int64_t, std::int64_t>>>(
      netlist.cell_graph_edges());

  nn::Tensor x0({static_cast<std::int64_t>(netlist.num_cells())});
  nn::Tensor y0(x0.shape());
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
    x0[static_cast<std::int64_t>(ci)] = static_cast<float>(initial.xy[ci].x);
    y0[static_cast<std::int64_t>(ci)] = static_cast<float>(initial.xy[ci].y);
  }

  // Candidate selection state: score the initial placement first.
  auto score_of = [&](const Placement3D& pl) {
    return cfg.select_by_route
               ? trial_route_score(netlist, pl, grid, cfg)
               : hard_predicted_congestion(netlist, pl, grid, predictor);
  };
  double best_score = score_of(initial);
  const double initial_score = best_score;
  if (!std::isfinite(initial_score))
    log_warn("dco: input placement scores non-finite (corrupt predictor?); "
             "candidate gating degraded");
  bool improved = false;

  const Deadline deadline(cfg.deadline_ms);
  GuardStats& gs = res.guard;
  FaultInjector& faults = FaultInjector::instance();

  // Outcome of one optimization attempt (one spreader weight init). A
  // diverged attempt never touches res.placement — the last committed
  // candidate stands — and is retried with fresh weights (bounded by
  // guard.max_reseeds).
  enum class Attempt { kDone, kDiverged, kDeadline };

  const int num_tiers = initial.num_tiers;
  // Per-cell power (switching + leakage) for the optional thermal channel.
  nn::Tensor cell_power;
  if (num_tiers > 2 && cfg.epsilon_thermal > 0.0f) {
    cell_power = nn::Tensor({static_cast<std::int64_t>(netlist.num_cells())});
    const double f_ghz = 1000.0 / timing_cfg.clock_period_ps;
    for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci) {
      const CellType& ct = netlist.cell_type(static_cast<CellId>(ci));
      cell_power[static_cast<std::int64_t>(ci)] = static_cast<float>(
          timing_cfg.activity * ct.internal_energy * f_ghz * 1e-3 +
          ct.leakage * 1e-6);
    }
  }

  auto run_attempt = [&](int restart) -> Attempt {
    GnnSpreader spreader(netlist, initial, cfg.spreader, rng);
    const std::vector<nn::Var> params = spreader.parameters();
    nn::Adam adam(params, cfg.lr);
    ParamSnapshot good(params);
    int halvings = 0;
    double best_loss_seen = std::numeric_limits<double>::infinity();
    int stall = 0;

    auto consider = [&](const SpreaderOutput& out, int iter) {
      // A candidate with non-finite coordinates or score can never replace
      // the committed one; the input placement remains the floor.
      bool tier_finite = num_tiers > 2 ? true : all_finite(out.z->value);
      if (num_tiers > 2)
        for (const nn::Var& pt : out.p)
          tier_finite = tier_finite && all_finite(pt->value);
      if (!all_finite(out.x->value) || !all_finite(out.y->value) ||
          !tier_finite) {
        log_warn("dco: candidate at iter ", iter,
                 " has non-finite coordinates; not considered");
        return;
      }
      Placement3D cand = initial;
      spreader.commit(out, cand);
      const double score = score_of(cand);
      if (!std::isfinite(score)) {
        log_warn("dco: candidate at iter ", iter,
                 " scored non-finite; not considered");
        return;
      }
      if (score < best_score - 1e-6) {
        best_score = score;
        res.best_iter = iter;
        res.placement = std::move(cand);
        improved = true;
      }
    };

    // Bounded backoff: restore the last weights that produced a finite loss
    // and halve the LR. Returns false once the budget is spent (the caller
    // then declares the attempt diverged).
    auto backoff = [&](int iter, const char* what) {
      if (halvings >= cfg.guard.max_lr_halvings) return false;
      good.restore(params);
      adam.reset_state();
      adam.set_lr(adam.lr() * 0.5f);
      ++halvings;
      ++gs.lr_halvings;
      ++gs.rollbacks;
      log_warn("dco: non-finite ", what, " at restart ", restart, " iter ",
               iter, "; rolled back, lr=", adam.lr());
      return true;
    };

    for (int iter = 0; iter < cfg.max_iter; ++iter) {
      if (deadline.expired()) {
        gs.deadline_hit = true;
        if (cfg.guard.strict)
          throw StatusError(Status::deadline_exceeded(
              "run_dco: deadline of " + std::to_string(cfg.deadline_ms) +
              " ms exceeded at restart " + std::to_string(restart)));
        log_warn("dco: deadline (", cfg.deadline_ms, " ms) hit at restart ",
                 restart, " iter ", iter, "; committing best-so-far");
        return Attempt::kDeadline;
      }
      SpreaderOutput out = spreader.forward(features);

      // Two-tier stacks take the classic z path (bit-identical to the
      // original two-die pipeline); K > 2 runs the generalized per-tier
      // losses on the stick-breaking probabilities.
      nn::Var l_cong, l_ovlp, l_cut, l_therm;
      if (num_tiers == 2) {
        SoftMaps maps = soft_feature_maps(netlist, grid, out.x, out.y, out.z);
        l_cong = congestion_loss(predictor, maps);
        l_ovlp = overlap_loss(netlist, out.x, out.y, out.z, initial.outline,
                              cfg.overlap_bins, cfg.overlap_bins,
                              cfg.overlap_target_util);
        l_cut = cutsize_loss(out.z, edges);
      } else {
        SoftMaps maps = soft_feature_maps(netlist, grid, out.x, out.y, out.p);
        l_cong = congestion_loss(predictor, maps);
        l_ovlp = overlap_loss(netlist, out.x, out.y, out.p, initial.outline,
                              cfg.overlap_bins, cfg.overlap_bins,
                              cfg.overlap_target_util);
        l_cut = cutsize_loss(out.p, edges);
        if (cfg.epsilon_thermal > 0.0f)
          l_therm = thermal_density_loss(netlist, out.x, out.y, out.p,
                                         cell_power, initial.outline,
                                         cfg.overlap_bins, cfg.overlap_bins);
      }
      nn::Var l_disp = displacement_loss(out.x, out.y, x0, y0, initial.outline);

      nn::Var total = nn::add(
          nn::add(nn::mul_scalar(l_disp, cfg.alpha_disp),
                  nn::mul_scalar(l_ovlp, cfg.beta_ovlp)),
          nn::add(nn::mul_scalar(l_cut, cfg.gamma_cut),
                  nn::mul_scalar(l_cong, cfg.delta_cong)));
      if (l_therm)
        total = nn::add(total, nn::mul_scalar(l_therm, cfg.epsilon_thermal));
      faults.maybe_corrupt(FaultSite::kDcoLoss, total->value);

      DcoIterate it;
      it.iter = iter;
      it.total = total->value[0];
      it.disp = l_disp->value[0];
      it.ovlp = l_ovlp->value[0];
      it.cut = l_cut->value[0];
      it.cong = l_cong->value[0];
      it.therm = l_therm ? l_therm->value[0] : 0.0;
      res.trace.push_back(it);
      log_debug("dco r", restart, " iter ", iter, " total=", it.total,
                " cong=", it.cong, " ovlp=", it.ovlp, " cut=", it.cut,
                " disp=", it.disp);

      if (!std::isfinite(it.total) || !std::isfinite(it.disp) ||
          !std::isfinite(it.ovlp) || !std::isfinite(it.cut) ||
          !std::isfinite(it.cong)) {
        ++gs.nan_events;
        if (cfg.guard.strict)
          throw StatusError(Status::numerical(
              "run_dco: non-finite loss at restart " + std::to_string(restart) +
              " iter " + std::to_string(iter)));
        if (cfg.guard.nan_policy == NanPolicy::kSkip) {
          // No gradient step is possible on a non-finite loss; if it
          // persists, patience ends the attempt (NaN never "improves").
          ++gs.skipped_steps;
          log_warn("dco: non-finite loss at restart ", restart, " iter ", iter,
                   "; step skipped");
          if (++stall >= cfg.patience) return Attempt::kDiverged;
          continue;
        }
        if (!backoff(iter, "loss")) return Attempt::kDiverged;
        continue;
      }

      // Clean iterate: these weights provably produce a finite loss, so they
      // become the rollback point before the (riskier) gradient step.
      good.capture(params);

      // Periodically evaluate the hard-committed candidate.
      if (iter % cfg.eval_every == 0 || iter + 1 == cfg.max_iter)
        consider(out, iter);

      if (it.total < best_loss_seen - cfg.convergence_eps) {
        best_loss_seen = it.total;
        stall = 0;
      } else if (++stall >= cfg.patience) {
        consider(out, iter);
        return Attempt::kDone;  // converged / plateaued
      }

      adam.zero_grad();
      nn::backward(total);
      if (faults.should_fire(FaultSite::kDcoGrad) && !params.empty()) {
        params[0]->ensure_grad();
        params[0]->grad[0] = std::numeric_limits<float>::quiet_NaN();
      }
      if (!adam.step_checked()) {
        ++gs.nan_events;
        if (cfg.guard.strict)
          throw StatusError(Status::numerical(
              "run_dco: non-finite gradient at restart " +
              std::to_string(restart) + " iter " + std::to_string(iter)));
        if (cfg.guard.nan_policy == NanPolicy::kSkip) {
          ++gs.skipped_steps;
          log_warn("dco: non-finite gradient at restart ", restart, " iter ",
                   iter, "; step skipped");
        } else if (!backoff(iter, "gradient")) {
          return Attempt::kDiverged;
        }
        continue;
      }
      if (!params_finite(params)) {
        // The step itself produced non-finite weights: a rollback is
        // mandatory regardless of policy.
        ++gs.nan_events;
        if (cfg.guard.strict)
          throw StatusError(Status::numerical(
              "run_dco: non-finite parameters after step at restart " +
              std::to_string(restart) + " iter " + std::to_string(iter)));
        if (!backoff(iter, "parameter update")) return Attempt::kDiverged;
      }
    }
    return Attempt::kDone;
  };

  bool stop = false;
  for (int restart = 0; restart < std::max(cfg.restarts, 1) && !stop;
       ++restart) {
    for (int attempt = 0;; ++attempt) {
      const Attempt outcome = run_attempt(restart);
      if (outcome == Attempt::kDeadline) {
        stop = true;
        break;
      }
      if (outcome == Attempt::kDone) break;
      if (attempt >= cfg.guard.max_reseeds) {
        log_warn("dco: restart ", restart,
                 " diverged and reseed budget exhausted; abandoning restart");
        break;
      }
      // Constructing a fresh spreader from the shared rng reseeds the
      // restart deterministically.
      ++gs.reseeds;
      log_warn("dco: restart ", restart,
               " diverged; reseeding with fresh weights");
    }
  }
  res.best_loss = best_score;
  res.initial_score = initial_score;
  res.improved = improved;
  // res.placement already holds the best candidate (or the initial
  // placement when no iterate scored better).
  for (std::size_t ci = 0; ci < netlist.num_cells(); ++ci)
    if (res.placement.tier[ci] != initial.tier[ci]) ++res.cells_moved_tier;
  return res;
}

}  // namespace dco3d
