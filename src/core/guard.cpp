#include "core/guard.hpp"

#include <cmath>
#include <limits>

namespace dco3d {

bool all_finite(std::span<const float> xs) {
  for (float x : xs)
    if (!std::isfinite(x)) return false;
  return true;
}

bool all_finite(const nn::Tensor& t) { return all_finite(t.data()); }

bool params_finite(const std::vector<nn::Var>& params) {
  for (const nn::Var& p : params)
    if (p && !all_finite(p->value)) return false;
  return true;
}

bool grads_finite(const std::vector<nn::Var>& params) {
  for (const nn::Var& p : params) {
    if (!p || p->grad.empty()) continue;
    if (!all_finite(p->grad)) return false;
  }
  return true;
}

void ParamSnapshot::capture(const std::vector<nn::Var>& params) {
  values_.clear();
  values_.reserve(params.size());
  for (const nn::Var& p : params) values_.push_back(p->value);
}

void ParamSnapshot::restore(const std::vector<nn::Var>& params) const {
  if (params.size() != values_.size())
    throw StatusError(Status::internal(
        "ParamSnapshot::restore: parameter count mismatch"));
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i] || !params[i]->value.same_shape(values_[i]))
      throw StatusError(Status::internal(
          "ParamSnapshot::restore: parameter shape mismatch"));
    params[i]->value = values_[i];
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultSite site, int step, int count, double param) {
  std::lock_guard<std::mutex> lk(mu_);
  Site& s = sites_[static_cast<int>(site)];
  s.armed = true;
  s.fire_at = step;
  s.count = count;
  s.consults = 0;
  s.fired = 0;
  s.param = param;
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  sites_.fill(Site{});
}

bool FaultInjector::armed(FaultSite site) const {
  std::lock_guard<std::mutex> lk(mu_);
  return sites_[static_cast<int>(site)].armed;
}

bool FaultInjector::should_fire_locked(FaultSite site) {
  Site& s = sites_[static_cast<int>(site)];
  if (!s.armed) return false;
  const int consult = s.consults++;
  if (consult >= s.fire_at && consult < s.fire_at + s.count) {
    ++s.fired;
    return true;
  }
  return false;
}

bool FaultInjector::should_fire(FaultSite site) {
  std::lock_guard<std::mutex> lk(mu_);
  return should_fire_locked(site);
}

bool FaultInjector::maybe_corrupt(FaultSite site, nn::Tensor& t) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!should_fire_locked(site) || t.empty()) return false;
  }
  t[0] = std::numeric_limits<float>::quiet_NaN();
  return true;
}

int FaultInjector::fired(FaultSite site) const {
  std::lock_guard<std::mutex> lk(mu_);
  return sites_[static_cast<int>(site)].fired;
}

double FaultInjector::param(FaultSite site) const {
  std::lock_guard<std::mutex> lk(mu_);
  return sites_[static_cast<int>(site)].param;
}

}  // namespace dco3d
