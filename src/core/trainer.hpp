#pragma once
// Training loop for the Siamese congestion predictor (Algorithm 1) plus the
// Fig. 5 evaluation metrics (NRMSE / SSIM over a held-out test split).

#include <memory>
#include <vector>

#include "core/guard.hpp"
#include "flow/dataset.hpp"
#include "nn/optimizer.hpp"
#include "nn/unet.hpp"
#include "util/rng.hpp"

namespace dco3d {

struct TrainConfig {
  int epochs = 12;
  float lr = 2e-3f;
  bool augment = true;        // 8x dihedral augmentation (§III-B3)
  double test_fraction = 0.2; // §V-A holds out 20%
  nn::UNetConfig unet;        // in_channels fixed to 7 by the data
  std::uint64_t seed = 23;
  // Normalization: labels are divided by this scale before training so the
  // regression target is O(1); predictions are scaled back for metrics.
  float label_scale = 0.0f;   // 0 = auto (set to the max label value)
  // Wall-clock budget for the whole training run; 0 = unlimited. On expiry
  // training stops gracefully and returns the model trained so far (rolled
  // back to the last finite state if the current one is poisoned).
  double deadline_ms = 0.0;
  // Non-finite recovery policy (docs/robustness.md). Snapshots are taken at
  // the end of every epoch that finished with finite losses and parameters.
  GuardConfig guard;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double test_loss = 0.0;
};

struct EvalStats {
  std::vector<float> nrmse;  // one entry per test map (every tier)
  std::vector<float> ssim;
  double frac_nrmse_below_02 = 0.0;
  double frac_ssim_above_07 = 0.0;
  double frac_ssim_above_08 = 0.0;
};

struct Predictor {
  std::shared_ptr<nn::SiameseUNet> model;
  float label_scale = 1.0f;
  /// Per-channel input normalization (divide channel c by feature_scale[c]).
  /// The raw feature maps have wildly different magnitudes (pin density is
  /// O(100), macro blockage O(1)); training and every inference path —
  /// including the differentiable soft maps inside the DCO loop — must apply
  /// the same scaling.
  nn::Tensor feature_scale;  // [7]
  std::vector<EpochStats> curve;  // Fig. 5(a)
  /// Guardrail events of the training run that produced this predictor
  /// (all-zero for checkpoints loaded from disk).
  GuardStats guard;

  /// Predict congestion maps (label scale restored) for a sample's features,
  /// one map per tier (index 0 = bottom).
  std::vector<nn::Tensor> predict(const DataSample& sample) const;
  /// Two-die convenience overload over the same path.
  void predict(const DataSample& sample, nn::Tensor out[2]) const;

  /// Normalize a raw [1,7,H,W] feature tensor (copy).
  nn::Tensor normalize_features(const nn::Tensor& f) const;
  /// Differentiable normalization of a [1,7,H,W] feature node.
  nn::Var normalize_features(const nn::Var& f) const;
};

/// Train on the given dataset (Alg. 1). Deterministic in cfg.seed.
Predictor train_predictor(const std::vector<DataSample>& dataset,
                          const TrainConfig& cfg);

/// Fig. 5(b) metrics on a set of samples.
EvalStats evaluate_predictor(const Predictor& predictor,
                             const std::vector<const DataSample*>& samples);

}  // namespace dco3d
