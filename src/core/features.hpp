#pragma once
// GNN node features (Table II): worst slack, worst output/input slew,
// driving-net switching power, internal power, leakage, width, height —
// computed by our STA/power substitute — plus position/tier encodings that
// let the spreader condition on the initial 3D placement.

#include "netlist/netlist.hpp"
#include "nn/tensor.hpp"
#include "timing/sta.hpp"

namespace dco3d {

inline constexpr std::int64_t kGnnFeatureDim = 11;

/// Build the [N, 11] feature matrix. Columns:
///   0 wst slack      (Table II)
///   1 wst output slew(Table II)
///   2 wst input slew (Table II)
///   3 drv net power  (Table II)
///   4 int power      (Table II)
///   5 leakage        (Table II)
///   6 width          (Table II)
///   7 height         (Table II)
///   8 x / die width   (position encoding)
///   9 y / die height  (position encoding)
///  10 tier in {-1,+1} (initial assignment encoding)
/// All Table-II columns are z-score normalized over movable cells.
nn::Tensor build_gnn_features(const Netlist& netlist, const Placement3D& placement,
                              const TimingConfig& timing_cfg);

}  // namespace dco3d
