#include "core/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

#include "grid/feature_maps.hpp"
#include "nn/ops.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace dco3d {

namespace {

nn::Tensor scaled(const nn::Tensor& t, float s) {
  // clone() (not the aliasing copy ctor) since every element is rewritten.
  nn::Tensor out = t.clone();
  for (float& v : out.data()) v *= s;
  return out;
}

/// Forward one sample and return the Eq. (4) loss node (per-tier feature and
/// label stacks, index 0 = bottom). Features must already be normalized.
nn::Var sample_loss(const nn::SiameseUNet& model,
                    const std::vector<nn::Tensor>& features,
                    const std::vector<nn::Tensor>& labels) {
  std::vector<nn::Var> f;
  f.reserve(features.size());
  for (const nn::Tensor& t : features) f.push_back(nn::make_leaf(t));
  std::vector<nn::Var> preds = model.forward_n(f);
  std::vector<nn::Var> l;
  l.reserve(labels.size());
  for (const nn::Tensor& t : labels) l.push_back(nn::make_leaf(t));
  return nn::siamese_loss_n(preds, l);
}

}  // namespace

nn::Tensor Predictor::normalize_features(const nn::Tensor& f) const {
  assert(f.rank() == 4 && f.dim(1) == kNumFeatureChannels);
  nn::Tensor out = f.clone();
  auto od = out.data();
  const auto hw = static_cast<std::int64_t>(f.dim(2) * f.dim(3));
  for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
    const float inv = 1.0f / std::max(feature_scale[c], 1e-9f);
    for (std::int64_t i = 0; i < hw; ++i)
      od[static_cast<std::size_t>(c * hw + i)] *= inv;
  }
  return out;
}

nn::Var Predictor::normalize_features(const nn::Var& f) const {
  assert(f->value.rank() == 4 && f->value.dim(1) == kNumFeatureChannels);
  nn::Tensor scale(f->value.shape());
  auto sd = scale.data();
  const auto hw = static_cast<std::int64_t>(f->value.dim(2) * f->value.dim(3));
  for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
    const float inv = 1.0f / std::max(feature_scale[c], 1e-9f);
    for (std::int64_t i = 0; i < hw; ++i)
      sd[static_cast<std::size_t>(c * hw + i)] = inv;
  }
  return nn::mul(f, nn::make_leaf(scale));
}

std::vector<nn::Tensor> Predictor::predict(const DataSample& sample) const {
  std::vector<nn::Var> f;
  f.reserve(sample.features.size());
  for (const nn::Tensor& t : sample.features)
    f.push_back(nn::make_leaf(normalize_features(t)));
  std::vector<nn::Var> preds = model->forward_n(f);
  std::vector<nn::Tensor> out;
  out.reserve(preds.size());
  for (const nn::Var& p : preds) out.push_back(scaled(p->value, label_scale));
  return out;
}

void Predictor::predict(const DataSample& sample, nn::Tensor out[2]) const {
  assert(sample.num_tiers() == 2);
  std::vector<nn::Tensor> maps = predict(sample);
  out[0] = std::move(maps[0]);
  out[1] = std::move(maps[1]);
}

Predictor train_predictor(const std::vector<DataSample>& dataset,
                          const TrainConfig& cfg) {
  Rng rng(cfg.seed);
  Predictor pred;

  // Auto label scale: normalize targets to O(1).
  float lmax = 1e-6f;
  for (const DataSample& s : dataset)
    for (const nn::Tensor& label : s.labels)
      for (std::int64_t i = 0; i < label.numel(); ++i)
        lmax = std::max(lmax, label[i]);
  pred.label_scale = cfg.label_scale > 0.0f ? cfg.label_scale : lmax;
  const float inv_scale = 1.0f / pred.label_scale;

  // Per-channel input scale: the max magnitude of each feature channel over
  // the whole dataset.
  pred.feature_scale = nn::Tensor({kNumFeatureChannels}, 1e-6f);
  for (const DataSample& s : dataset) {
    for (const nn::Tensor& feat : s.features) {
      const auto hw = static_cast<std::int64_t>(feat.dim(2) * feat.dim(3));
      for (std::int64_t c = 0; c < kNumFeatureChannels; ++c)
        for (std::int64_t i = 0; i < hw; ++i)
          pred.feature_scale[c] =
              std::max(pred.feature_scale[c], std::abs(feat[c * hw + i]));
    }
  }

  nn::UNetConfig ucfg = cfg.unet;
  ucfg.in_channels = kNumFeatureChannels;
  ucfg.out_channels = 1;
  pred.model = std::make_shared<nn::SiameseUNet>(ucfg, rng);
  const std::vector<nn::Var> params = pred.model->parameters();
  nn::Adam adam(params, cfg.lr);

  std::vector<const DataSample*> train, test;
  split_dataset(dataset, cfg.test_fraction, train, test);

  // Guardrail state: the last known-good parameter snapshot (initialized to
  // the pre-training weights, refreshed after every clean epoch), the
  // wall-clock deadline, and the bounded LR backoff budget.
  const Deadline deadline(cfg.deadline_ms);
  GuardStats& gs = pred.guard;
  ParamSnapshot good(params);
  FaultInjector& faults = FaultInjector::instance();
  int halvings = 0;

  // Shared recovery for a non-finite loss/gradient/parameter event at one
  // training step. `poisoned` = model parameters may already hold non-finite
  // values (a rollback is mandatory regardless of policy).
  auto recover = [&](int epoch, const char* what, bool poisoned) {
    ++gs.nan_events;
    if (cfg.guard.strict)
      throw StatusError(Status::numerical(
          "train_predictor: non-finite " + std::string(what) + " at epoch " +
          std::to_string(epoch)));
    const bool rollback = poisoned || cfg.guard.nan_policy == NanPolicy::kRollback;
    const bool halve = rollback || cfg.guard.nan_policy == NanPolicy::kHalveLr;
    if (rollback) {
      good.restore(params);
      adam.reset_state();
      ++gs.rollbacks;
    } else {
      ++gs.skipped_steps;
    }
    if (halve && halvings < cfg.guard.max_lr_halvings) {
      adam.set_lr(adam.lr() * 0.5f);
      ++halvings;
      ++gs.lr_halvings;
    }
    log_warn("trainer: non-finite ", what, " at epoch ", epoch,
             rollback ? "; rolled back to last good snapshot" : "; step skipped",
             halve ? " (lr now " : "", halve ? std::to_string(adam.lr()) : "",
             halve ? ")" : "");
  };

  for (int epoch = 0; epoch < cfg.epochs && !gs.deadline_hit; ++epoch) {
    // Shuffle training order each epoch.
    std::vector<const DataSample*> order = train;
    rng.shuffle(order);

    double train_loss = 0.0;
    std::size_t counted = 0;
    for (const DataSample* s : order) {
      if (deadline.expired()) {
        gs.deadline_hit = true;
        log_warn("trainer: deadline (", cfg.deadline_ms,
                 " ms) hit at epoch ", epoch, "; committing model as-is");
        break;
      }
      const auto tiers = s->features.size();
      std::vector<nn::Tensor> feats(tiers), labels(tiers);
      for (std::size_t t = 0; t < tiers; ++t) {
        feats[t] = pred.normalize_features(s->features[t]);
        labels[t] = scaled(s->labels[t], inv_scale);
      }
      if (cfg.augment) {
        // One random dihedral transform per step (the full 8x set is swept
        // across epochs), applied consistently to every tier.
        const int which = static_cast<int>(rng.uniform_int(0, 7));
        for (std::size_t t = 0; t < tiers; ++t) {
          feats[t] = augment_dihedral(feats[t], which);
          labels[t] = augment_dihedral(labels[t], which);
        }
      }
      nn::Var loss = sample_loss(*pred.model, feats, labels);
      faults.maybe_corrupt(FaultSite::kTrainerLoss, loss->value);
      if (!std::isfinite(loss->value[0])) {
        recover(epoch, "loss", /*poisoned=*/false);
        continue;
      }
      train_loss += loss->value[0];
      ++counted;
      adam.zero_grad();
      nn::backward(loss);
      if (faults.should_fire(FaultSite::kTrainerGrad) && !params.empty()) {
        params[0]->ensure_grad();
        params[0]->grad[0] = std::numeric_limits<float>::quiet_NaN();
      }
      if (!adam.step_checked()) {
        recover(epoch, "gradient", /*poisoned=*/false);
        continue;
      }
      if (!params_finite(params))
        recover(epoch, "parameter update", /*poisoned=*/true);
    }
    train_loss /= std::max<std::size_t>(counted, 1);

    double test_loss = 0.0;
    std::size_t test_counted = 0;
    for (const DataSample* s : test) {
      const auto tiers = s->features.size();
      std::vector<nn::Tensor> feats(tiers), labels(tiers);
      for (std::size_t t = 0; t < tiers; ++t) {
        feats[t] = pred.normalize_features(s->features[t]);
        labels[t] = scaled(s->labels[t], inv_scale);
      }
      nn::Var loss = sample_loss(*pred.model, feats, labels);
      if (!std::isfinite(loss->value[0])) continue;
      test_loss += loss->value[0];
      ++test_counted;
    }
    test_loss /= std::max<std::size_t>(test_counted, 1);
    pred.curve.push_back({epoch, train_loss, test_loss});

    // Refresh the rollback point only from a provably clean state.
    if (std::isfinite(train_loss) && std::isfinite(test_loss) &&
        params_finite(params))
      good.capture(params);
  }

  // Never hand back a poisoned model: a final non-finite state (however it
  // slipped past the per-step checks) falls back to the last good snapshot.
  if (!params_finite(params)) {
    good.restore(params);
    ++gs.rollbacks;
    log_warn("trainer: final parameters non-finite; restored last good snapshot");
  }
  return pred;
}

EvalStats evaluate_predictor(const Predictor& predictor,
                             const std::vector<const DataSample*>& samples) {
  EvalStats ev;
  for (const DataSample* s : samples) {
    const std::vector<nn::Tensor> out = predictor.predict(*s);
    for (std::size_t die = 0; die < out.size(); ++die) {
      const auto h = static_cast<std::size_t>(s->labels[die].dim(2));
      const auto w = static_cast<std::size_t>(s->labels[die].dim(3));
      ev.nrmse.push_back(
          static_cast<float>(nrmse(out[die].data(), s->labels[die].data())));
      ev.ssim.push_back(
          static_cast<float>(ssim(out[die].data(), s->labels[die].data(), h, w)));
    }
  }
  ev.frac_nrmse_below_02 = fraction_below(ev.nrmse, 0.2);
  ev.frac_ssim_above_07 = fraction_above(ev.ssim, 0.7);
  ev.frac_ssim_above_08 = fraction_above(ev.ssim, 0.8);
  return ev;
}

}  // namespace dco3d
