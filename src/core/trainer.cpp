#include "core/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "grid/feature_maps.hpp"
#include "nn/ops.hpp"
#include "util/stats.hpp"

namespace dco3d {

namespace {

nn::Tensor scaled(const nn::Tensor& t, float s) {
  nn::Tensor out = t;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] *= s;
  return out;
}

/// Forward one sample and return the Eq. (4) loss node. Features must
/// already be normalized.
nn::Var sample_loss(const nn::SiameseUNet& model, const nn::Tensor& f_top,
                    const nn::Tensor& f_bot, const nn::Tensor& l_top,
                    const nn::Tensor& l_bot) {
  auto [p_top, p_bot] = model.forward(nn::make_leaf(f_top), nn::make_leaf(f_bot));
  return nn::siamese_loss(p_top, nn::make_leaf(l_top), p_bot, nn::make_leaf(l_bot));
}

}  // namespace

nn::Tensor Predictor::normalize_features(const nn::Tensor& f) const {
  assert(f.rank() == 4 && f.dim(1) == kNumFeatureChannels);
  nn::Tensor out = f;
  const auto hw = static_cast<std::int64_t>(f.dim(2) * f.dim(3));
  for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
    const float inv = 1.0f / std::max(feature_scale[c], 1e-9f);
    for (std::int64_t i = 0; i < hw; ++i) out[c * hw + i] *= inv;
  }
  return out;
}

nn::Var Predictor::normalize_features(const nn::Var& f) const {
  assert(f->value.rank() == 4 && f->value.dim(1) == kNumFeatureChannels);
  nn::Tensor scale(f->value.shape());
  const auto hw = static_cast<std::int64_t>(f->value.dim(2) * f->value.dim(3));
  for (std::int64_t c = 0; c < kNumFeatureChannels; ++c) {
    const float inv = 1.0f / std::max(feature_scale[c], 1e-9f);
    for (std::int64_t i = 0; i < hw; ++i) scale[c * hw + i] = inv;
  }
  return nn::mul(f, nn::make_leaf(scale));
}

void Predictor::predict(const DataSample& sample, nn::Tensor out[2]) const {
  auto [p_top, p_bot] =
      model->forward(nn::make_leaf(normalize_features(sample.features[1])),
                     nn::make_leaf(normalize_features(sample.features[0])));
  out[1] = scaled(p_top->value, label_scale);
  out[0] = scaled(p_bot->value, label_scale);
}

Predictor train_predictor(const std::vector<DataSample>& dataset,
                          const TrainConfig& cfg) {
  Rng rng(cfg.seed);
  Predictor pred;

  // Auto label scale: normalize targets to O(1).
  float lmax = 1e-6f;
  for (const DataSample& s : dataset)
    for (int die = 0; die < 2; ++die)
      for (std::int64_t i = 0; i < s.labels[die].numel(); ++i)
        lmax = std::max(lmax, s.labels[die][i]);
  pred.label_scale = cfg.label_scale > 0.0f ? cfg.label_scale : lmax;
  const float inv_scale = 1.0f / pred.label_scale;

  // Per-channel input scale: the max magnitude of each feature channel over
  // the whole dataset.
  pred.feature_scale = nn::Tensor({kNumFeatureChannels}, 1e-6f);
  for (const DataSample& s : dataset) {
    for (int die = 0; die < 2; ++die) {
      const auto hw = static_cast<std::int64_t>(s.features[die].dim(2) *
                                                s.features[die].dim(3));
      for (std::int64_t c = 0; c < kNumFeatureChannels; ++c)
        for (std::int64_t i = 0; i < hw; ++i)
          pred.feature_scale[c] = std::max(
              pred.feature_scale[c], std::abs(s.features[die][c * hw + i]));
    }
  }

  nn::UNetConfig ucfg = cfg.unet;
  ucfg.in_channels = kNumFeatureChannels;
  ucfg.out_channels = 1;
  pred.model = std::make_shared<nn::SiameseUNet>(ucfg, rng);
  nn::Adam adam(pred.model->parameters(), cfg.lr);

  std::vector<const DataSample*> train, test;
  split_dataset(dataset, cfg.test_fraction, train, test);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Shuffle training order each epoch.
    std::vector<const DataSample*> order = train;
    rng.shuffle(order);

    double train_loss = 0.0;
    for (const DataSample* s : order) {
      nn::Tensor f_top = pred.normalize_features(s->features[1]);
      nn::Tensor f_bot = pred.normalize_features(s->features[0]);
      nn::Tensor l_top = scaled(s->labels[1], inv_scale);
      nn::Tensor l_bot = scaled(s->labels[0], inv_scale);
      if (cfg.augment) {
        // One random dihedral transform per step (the full 8x set is swept
        // across epochs), applied consistently to both dies.
        const int which = static_cast<int>(rng.uniform_int(0, 7));
        f_top = augment_dihedral(f_top, which);
        f_bot = augment_dihedral(f_bot, which);
        l_top = augment_dihedral(l_top, which);
        l_bot = augment_dihedral(l_bot, which);
      }
      nn::Var loss = sample_loss(*pred.model, f_top, f_bot, l_top, l_bot);
      train_loss += loss->value[0];
      adam.zero_grad();
      nn::backward(loss);
      adam.step();
    }
    train_loss /= std::max<std::size_t>(order.size(), 1);

    double test_loss = 0.0;
    for (const DataSample* s : test) {
      nn::Var loss = sample_loss(*pred.model,
                                 pred.normalize_features(s->features[1]),
                                 pred.normalize_features(s->features[0]),
                                 scaled(s->labels[1], inv_scale),
                                 scaled(s->labels[0], inv_scale));
      test_loss += loss->value[0];
    }
    test_loss /= std::max<std::size_t>(test.size(), 1);
    pred.curve.push_back({epoch, train_loss, test_loss});
  }
  return pred;
}

EvalStats evaluate_predictor(const Predictor& predictor,
                             const std::vector<const DataSample*>& samples) {
  EvalStats ev;
  for (const DataSample* s : samples) {
    nn::Tensor out[2];
    predictor.predict(*s, out);
    for (int die = 0; die < 2; ++die) {
      const auto h = static_cast<std::size_t>(s->labels[die].dim(2));
      const auto w = static_cast<std::size_t>(s->labels[die].dim(3));
      ev.nrmse.push_back(
          static_cast<float>(nrmse(out[die].data(), s->labels[die].data())));
      ev.ssim.push_back(
          static_cast<float>(ssim(out[die].data(), s->labels[die].data(), h, w)));
    }
  }
  ev.frac_nrmse_below_02 = fraction_below(ev.nrmse, 0.2);
  ev.frac_ssim_above_07 = fraction_above(ev.ssim, 0.7);
  ev.frac_ssim_above_08 = fraction_above(ev.ssim, 0.8);
  return ev;
}

}  // namespace dco3d
