#pragma once
// Bayesian optimization over the Table-I placement-parameter space — the
// "Pin-3D + BO" baseline [19]: GP surrogate + expected-improvement
// acquisition maximized by random candidate sampling in the encoded
// [0,1]^16 space (mixed bool/enum/int/float knobs round-trip through
// PlacementParams::encode/decode).

#include <functional>
#include <vector>

#include "opt/gp.hpp"
#include "place/params.hpp"
#include "util/rng.hpp"

namespace dco3d {

struct BoConfig {
  int init_samples = 6;   // random warm-up evaluations
  int iterations = 10;    // BO steps after warm-up
  int candidates = 512;   // EI candidates per step
  double xi = 0.01;       // exploration margin
};

struct BoTracePoint {
  PlacementParams params;
  double objective = 0.0;
};

struct BoResult {
  PlacementParams best_params;
  double best_objective = 0.0;
  std::vector<BoTracePoint> trace;  // in evaluation order
};

/// Minimize `objective` (e.g. routing overflow after placement) over the
/// placement-parameter space. Deterministic given rng state.
///
/// Defined in src/search/searcher.cpp: this is the B=1 / full-fidelity
/// special case of multi_fidelity_search, bit-identical to the original
/// sequential implementation (tests/test_search.cpp goldens the
/// equivalence). Link dco3d_search (or the dco3d umbrella) to use it.
BoResult bayes_optimize(const std::function<double(const PlacementParams&)>& objective,
                        const BoConfig& cfg, Rng& rng);

}  // namespace dco3d
