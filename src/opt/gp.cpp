#include "opt/gp.hpp"

#include <cassert>
#include <cmath>

namespace dco3d {

double GaussianProcess::kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  assert(a.size() == b.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return hyper_.signal_var *
         std::exp(-d2 / (2.0 * hyper_.length_scale * hyper_.length_scale));
}

void GaussianProcess::fit(std::vector<std::vector<double>> x, std::vector<double> y) {
  assert(x.size() == y.size() && !x.empty());
  x_ = std::move(x);
  const std::size_t n = x_.size();

  // Normalize targets.
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_std_ = std::sqrt(var / static_cast<double>(n));
  if (y_std_ < 1e-12) y_std_ = 1.0;

  // K + noise I.
  std::vector<std::vector<double>> k(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      k[i][j] = k[j][i] = kernel(x_[i], x_[j]);
    }
    k[i][i] += hyper_.noise_var + 1e-10;
  }

  // Cholesky K = L L^T.
  l_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = k[i][j];
      for (std::size_t m = 0; m < j; ++m) s -= l_[i][m] * l_[j][m];
      if (i == j) {
        l_[i][i] = std::sqrt(std::max(s, 1e-12));
      } else {
        l_[i][j] = s / l_[j][j];
      }
    }
  }

  // alpha = K^-1 (y - mean) / std via two triangular solves.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = (y[i] - y_mean_) / y_std_;
    for (std::size_t m = 0; m < i; ++m) s -= l_[i][m] * z[m];
    z[i] = s / l_[i][i];
  }
  alpha_.assign(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = z[i];
    for (std::size_t m = i + 1; m < n; ++m) s -= l_[m][i] * alpha_[m];
    alpha_[i] = s / l_[i][i];
  }
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& x) const {
  Prediction p;
  if (!fitted()) {
    p.var = hyper_.signal_var;
    return p;
  }
  const std::size_t n = x_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, x_[i]);

  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += kstar[i] * alpha_[i];

  // v = L^-1 k*; var = k** - v.v
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = kstar[i];
    for (std::size_t m = 0; m < i; ++m) s -= l_[i][m] * v[m];
    v[i] = s / l_[i][i];
  }
  double vv = 0.0;
  for (double t : v) vv += t * t;

  p.mean = mean * y_std_ + y_mean_;
  p.var = std::max(hyper_.signal_var - vv, 1e-12) * y_std_ * y_std_;
  return p;
}

double expected_improvement(const GaussianProcess::Prediction& p, double best,
                            double xi) {
  const double sigma = std::sqrt(p.var);
  if (sigma < 1e-12) return 0.0;
  const double z = (best - p.mean - xi) / sigma;
  const double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  return (best - p.mean - xi) * cdf + sigma * phi;
}

}  // namespace dco3d
