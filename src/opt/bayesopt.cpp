#include "opt/bayesopt.hpp"

#include <algorithm>
#include <limits>

namespace dco3d {

BoResult bayes_optimize(const std::function<double(const PlacementParams&)>& objective,
                        const BoConfig& cfg, Rng& rng) {
  BoResult res;
  res.best_objective = std::numeric_limits<double>::infinity();

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  auto evaluate = [&](const PlacementParams& p) {
    const double y = objective(p);
    const auto enc = p.encode();
    xs.emplace_back(enc.begin(), enc.end());
    ys.push_back(y);
    res.trace.push_back({p, y});
    if (y < res.best_objective) {
      res.best_objective = y;
      res.best_params = p;
    }
  };

  // Warm-up: Table-I random sampling (always includes the default config so
  // BO never regresses below the stock flow).
  evaluate(PlacementParams{});
  for (int i = 1; i < cfg.init_samples; ++i) evaluate(PlacementParams::sample(rng));

  for (int it = 0; it < cfg.iterations; ++it) {
    GaussianProcess gp;
    gp.fit(xs, ys);

    double best_ei = -1.0;
    PlacementParams best_cand;
    for (int c = 0; c < cfg.candidates; ++c) {
      // Mix pure exploration with perturbations of the incumbent.
      PlacementParams cand;
      if (rng.bernoulli(0.5)) {
        cand = PlacementParams::sample(rng);
      } else {
        auto enc = res.best_params.encode();
        for (double& v : enc) v = std::clamp(v + rng.normal(0.0, 0.15), 0.0, 1.0);
        cand = PlacementParams::decode(enc);
      }
      const auto enc = cand.encode();
      const auto pred = gp.predict({enc.begin(), enc.end()});
      const double ei = expected_improvement(pred, res.best_objective, cfg.xi);
      if (ei > best_ei) {
        best_ei = ei;
        best_cand = cand;
      }
    }
    evaluate(best_cand);
  }
  return res;
}

}  // namespace dco3d
