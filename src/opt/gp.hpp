#pragma once
// Gaussian-process regression with an RBF kernel — the surrogate model for
// the "Pin-3D + BO" baseline [19], which tunes the Table-I placement knobs.

#include <cstddef>
#include <vector>

namespace dco3d {

/// GP over R^d with kernel k(a,b) = sf2 * exp(-||a-b||^2 / (2 l^2)) and
/// observation noise sn2 on the diagonal. Fit cost is O(n^3) via Cholesky;
/// n stays tiny (tens of trials) in BO.
class GaussianProcess {
 public:
  struct Hyper {
    double length_scale = 0.5;
    double signal_var = 1.0;
    double noise_var = 1e-4;
  };

  GaussianProcess() : hyper_(Hyper{0.5, 1.0, 1e-4}) {}
  explicit GaussianProcess(Hyper hyper) : hyper_(hyper) {}

  /// Fit to observations (normalizes y internally to zero mean, unit var).
  void fit(std::vector<std::vector<double>> x, std::vector<double> y);

  struct Prediction {
    double mean = 0.0;
    double var = 0.0;
  };
  Prediction predict(const std::vector<double>& x) const;

  bool fitted() const { return !x_.empty(); }
  std::size_t size() const { return x_.size(); }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  Hyper hyper_;
  std::vector<std::vector<double>> x_;
  std::vector<double> alpha_;          // K^-1 (y - mean)
  std::vector<std::vector<double>> l_; // Cholesky factor of K
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

/// Expected improvement (minimization) of a candidate given the incumbent
/// best observed value; xi is the exploration margin.
double expected_improvement(const GaussianProcess::Prediction& p, double best,
                            double xi = 0.01);

}  // namespace dco3d
