#!/usr/bin/env bash
# Build the project with a sanitizer configuration and run the tier-1 test
# suite, proving the guardrail/recovery paths (rollbacks, reseeds, early
# commits, fault injection) are leak- and UB-free, and that the parallel
# kernel layer (src/util/parallel.hpp) is race-free under ThreadSanitizer.
#
# Usage:
#   scripts/check_sanitize.sh                 # address,undefined (default)
#   DCO3D_SANITIZE=undefined scripts/check_sanitize.sh
#   DCO3D_SANITIZE=thread scripts/check_sanitize.sh   # TSan, multi-threaded run
#   BUILD_DIR=/tmp/san scripts/check_sanitize.sh
#
# The default (ASan) configuration runs the suite twice: once normally, and
# once as a dedicated LSan leak pass with DCO3D_ARENA=0, which puts the
# buffer pool in pass-through mode so every tensor/scratch buffer is an
# individually tracked heap allocation — pooled (parked) buffers can neither
# mask a leaked Storage nor show up as false positives.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SAN="${DCO3D_SANITIZE:-address,undefined}"
BUILD="${BUILD_DIR:-$REPO_ROOT/build-sanitize}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configuring ($SAN) into $BUILD"
cmake -B "$BUILD" -S "$REPO_ROOT" -DDCO3D_SANITIZE="$SAN" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building"
cmake --build "$BUILD" -j "$JOBS"

echo "== running tier-1 tests under $SAN"
if [[ "$SAN" == *thread* ]]; then
  # TSan is incompatible with ASan's leak checker; force the worker pool wide
  # enough that every parallel_for actually fans out, so races are reachable.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  export DCO3D_THREADS="${DCO3D_THREADS:-4}"
  echo "   (DCO3D_THREADS=$DCO3D_THREADS)"
else
  # halt_on_error keeps CI signal crisp; detect_leaks needs ASan.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
fi
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

if [[ "$SAN" == *thread* ]]; then
  # Batch smoke: two designs through the staged flow concurrently — the batch
  # runner's job fan-out is the one place flows run side by side, so it gets
  # its own TSan pass on top of the unit tests.
  echo "== batch smoke under TSan (2 designs, DCO3D_THREADS=$DCO3D_THREADS)"
  "$BUILD/tools/dco3d" batch dma vga --scale 0.02 --grid 16 --clock 250

  # 3-tier flow smoke: the N-tier generalization threads per-tier state
  # (K-sized route grids, per-tier soft maps, via stacks) through the same
  # parallel kernels; run one multi-tier stacking workload end to end so the
  # tier-indexed buffers get a TSan pass too.
  echo "== 3-tier flow smoke under TSan (memlogic, --tiers 3)"
  "$BUILD/tools/dco3d" batch memlogic --scale 0.02 --grid 16 --clock 280 --tiers 3

  # Serve smoke: the resident server is the other concurrent-flow surface —
  # worker lanes, streaming connections, admission, drain. load_serve drives
  # an overload sweep (0.5x/1x/2x capacity) over the real protocol, so the
  # whole submit -> schedule -> stream -> drain path runs under TSan.
  # Queue 2 keeps the 2x level genuinely over capacity despite TSan's ~40x
  # slower service times (8 jobs' worth of excess must overflow the queue).
  echo "== serve smoke under TSan (load_serve overload sweep)"
  "$BUILD/tools/load_serve" --jobs 8 --queue 2 -o "$BUILD/BENCH_serve_tsan.json"

  # Search smoke: the multi-fidelity searcher overlaps a parallel GP scoring
  # sweep with batched concurrent flow evaluations (B=2 here) against a
  # shared artifact cache — the one place all three concurrency surfaces
  # (kernel pool, batch lanes, cache) compose, so it gets its own TSan pass.
  echo "== search smoke under TSan (batch 2, cheap screening)"
  rm -rf "$BUILD/tsan-search-cache"
  "$BUILD/tools/dco3d" search dma --scale 0.01 --grid 8 --rounds 2 --batch 2 \
    --init 3 --candidates 32 --cache-dir "$BUILD/tsan-search-cache"
fi

if [[ "$SAN" == *address* ]]; then
  echo "== leak pass (ASan+LSan, DCO3D_ARENA=0 pass-through)"
  export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
  export DCO3D_ARENA=0
  ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"
  unset DCO3D_ARENA
fi

# SIMD parity pass: rerun the cross-backend bit-equality tests with the
# scalar backend forced, so the dispatch override path (and the scalar
# kernels themselves) execute under the sanitizer. The tests internally
# switch through every compiled-in backend, so on an AVX2/NEON host this
# covers the vector kernels' loads/stores (incl. masked tails) too.
echo "== SIMD backend parity under $SAN (DCO3D_SIMD=scalar start)"
DCO3D_SIMD=scalar ctest --test-dir "$BUILD" --output-on-failure -R "Simd" \
  -j "$JOBS"

# Import smoke: both open-format readers (structural Verilog and Bookshelf)
# parse the checked-in examples, lint, freeze, and write the design artifact
# under the sanitizer — the lexer/parser string handling and the freeze-time
# CSR construction are exactly the code an adversarial input would hit.
echo "== import smoke under $SAN (counter8.v + tiny.aux)"
"$BUILD/tools/dco3d" import "$REPO_ROOT/examples/counter8.v" \
  -o "$BUILD/counter8.design"
"$BUILD/tools/dco3d" import "$REPO_ROOT/examples/tiny.aux" \
  -o "$BUILD/tiny.design"
"$BUILD/tools/dco3d" check "$BUILD/counter8.design"
"$BUILD/tools/dco3d" check "$BUILD/tiny.design"

# Bench smoke: one pass of the perf-gate comparator against the committed
# baseline at the sanitize threshold (50%, set by CMake when DCO3D_SANITIZE
# is on) — proves the gate tooling itself is sanitizer-clean.
echo "== bench_regression smoke under $SAN"
ctest --test-dir "$BUILD" --output-on-failure -R "bench_regression"

echo "== sanitize check passed"
