#!/usr/bin/env bash
# Build the project with ASan/UBSan and run the tier-1 test suite, proving
# the guardrail/recovery paths (rollbacks, reseeds, early commits, fault
# injection) are leak- and UB-free.
#
# Usage:
#   scripts/check_sanitize.sh                 # address,undefined (default)
#   DCO3D_SANITIZE=undefined scripts/check_sanitize.sh
#   BUILD_DIR=/tmp/san scripts/check_sanitize.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SAN="${DCO3D_SANITIZE:-address,undefined}"
BUILD="${BUILD_DIR:-$REPO_ROOT/build-sanitize}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configuring ($SAN) into $BUILD"
cmake -B "$BUILD" -S "$REPO_ROOT" -DDCO3D_SANITIZE="$SAN" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building"
cmake --build "$BUILD" -j "$JOBS"

echo "== running tier-1 tests under $SAN"
# halt_on_error keeps CI signal crisp; detect_leaks needs ASan.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== sanitize check passed"
