#!/usr/bin/env python3
"""Refresh the measured-results section of EXPERIMENTS.md from bench_output.txt.

Run after `for b in build/bench/*; do $b; done | tee bench_output.txt`:

    python3 scripts/update_experiments.py

Extracts the Table III block (everything from the table header to its summary
line) and splices it into EXPERIMENTS.md at the TABLE3_RESULTS marker.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    bench = (ROOT / "bench_output.txt").read_text()
    exp_path = ROOT / "EXPERIMENTS.md"
    exp = exp_path.read_text()

    m = re.search(
        r"== Table III.*?== summary: DCO-3D wins[^\n]*\n", bench, re.DOTALL
    )
    if not m:
        print("Table III block not found in bench_output.txt", file=sys.stderr)
        return 1
    block = "```\n" + m.group(0).rstrip() + "\n```"

    marker = "<!-- TABLE3_RESULTS -->"
    if marker in exp:
        exp = exp.replace(marker, block)
    else:
        # Already substituted once: replace the previous code block following
        # the Table III heading.
        exp = re.sub(
            r"(## Table III[^\n]*\n(?:.*?\n)*?)```\n== Table III.*?```",
            lambda mm: mm.group(1) + block,
            exp,
            flags=re.DOTALL,
        )
    exp_path.write_text(exp)
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
